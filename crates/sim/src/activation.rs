//! Activation sequences (§4).
//!
//! A *fair activation sequence* is an infinite sequence of non-empty node
//! subsets in which every node appears infinitely often. The sync engine
//! consumes one activation set per time step. The built-in sequences:
//!
//! * [`RoundRobin`] — singleton activations in id order; fair, and
//!   periodic so cycle detection is sound.
//! * [`AllAtOnce`] — every node every step (the fully synchronous sweep);
//!   fair and periodic.
//! * [`RandomFair`] — a seeded random singleton per step; fair with
//!   probability 1. Used by the determinism experiments (E8).
//! * [`RandomSubsets`] — a seeded random non-empty subset per step.
//! * [`Scripted`] — an explicit finite prefix (e.g. the exact step order
//!   that drives a transient oscillation), then round-robin to stay fair.

use ibgp_types::RouterId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of activation sets over `n` routers.
pub trait Activation {
    /// The next activation set (non-empty; members `< n`).
    fn next_set(&mut self, n: usize) -> Vec<RouterId>;

    /// A finite phase identifier if the sequence is periodic (used to make
    /// cycle detection sound); `None` for aperiodic/random sequences.
    ///
    /// **Contract:** implementations must return values already normalized
    /// to the schedule's own period — two positions in the sequence get
    /// the same phase **iff** the sequence's future is identical from
    /// both. Consumers (e.g. `SyncEngine::run`) use the value as-is; they
    /// no longer reduce it modulo the node count, which was only correct
    /// for schedules whose period happens to equal `n`.
    fn phase(&self) -> Option<u64> {
        None
    }
}

/// Singleton activations `0, 1, …, n-1, 0, 1, …`.
#[derive(Debug, Default, Clone)]
pub struct RoundRobin {
    next: u64,
}

impl RoundRobin {
    /// Start at node 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Activation for RoundRobin {
    fn next_set(&mut self, n: usize) -> Vec<RouterId> {
        let id = (self.next % n as u64) as u32;
        // Keep the position normalized to the period `n` so `phase` honors
        // the trait contract without needing `n` at query time.
        self.next = (self.next + 1) % n.max(1) as u64;
        vec![RouterId::new(id)]
    }

    fn phase(&self) -> Option<u64> {
        Some(self.next)
    }
}

/// Every node activates every step.
#[derive(Debug, Default, Clone)]
pub struct AllAtOnce;

impl Activation for AllAtOnce {
    fn next_set(&mut self, n: usize) -> Vec<RouterId> {
        (0..n as u32).map(RouterId::new).collect()
    }

    fn phase(&self) -> Option<u64> {
        Some(0)
    }
}

/// A seeded random singleton per step.
#[derive(Debug, Clone)]
pub struct RandomFair {
    rng: StdRng,
}

impl RandomFair {
    /// Deterministic sequence for the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Activation for RandomFair {
    fn next_set(&mut self, n: usize) -> Vec<RouterId> {
        vec![RouterId::new(self.rng.gen_range(0..n as u32))]
    }
}

/// A seeded random non-empty subset per step.
#[derive(Debug, Clone)]
pub struct RandomSubsets {
    rng: StdRng,
}

impl RandomSubsets {
    /// Deterministic sequence for the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Activation for RandomSubsets {
    fn next_set(&mut self, n: usize) -> Vec<RouterId> {
        loop {
            let set: Vec<RouterId> = (0..n as u32)
                .filter(|_| self.rng.gen_bool(0.5))
                .map(RouterId::new)
                .collect();
            if !set.is_empty() {
                return set;
            }
        }
    }
}

/// An explicit finite prefix of activation sets, then round-robin.
#[derive(Debug, Clone)]
pub struct Scripted {
    script: Vec<Vec<RouterId>>,
    pos: usize,
    tail: RoundRobin,
}

impl Scripted {
    /// Run `script` first, then fall back to round-robin (keeping the
    /// sequence fair).
    pub fn new(script: Vec<Vec<RouterId>>) -> Self {
        Self {
            script,
            pos: 0,
            tail: RoundRobin::new(),
        }
    }

    /// Convenience: a script of singleton activations by raw id.
    pub fn singletons(ids: impl IntoIterator<Item = u32>) -> Self {
        Self::new(ids.into_iter().map(|i| vec![RouterId::new(i)]).collect())
    }
}

impl Activation for Scripted {
    fn next_set(&mut self, n: usize) -> Vec<RouterId> {
        if self.pos < self.script.len() {
            let set = self.script[self.pos].clone();
            self.pos += 1;
            assert!(
                !set.is_empty(),
                "scripted activation sets must be non-empty"
            );
            set
        } else {
            self.tail.next_set(n)
        }
    }

    fn phase(&self) -> Option<u64> {
        if self.pos < self.script.len() {
            None // still in the aperiodic prefix
        } else {
            self.tail.phase()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(set: &[RouterId]) -> Vec<u32> {
        set.iter().map(|r| r.raw()).collect()
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut rr = RoundRobin::new();
        assert_eq!(ids(&rr.next_set(3)), vec![0]);
        assert_eq!(ids(&rr.next_set(3)), vec![1]);
        assert_eq!(ids(&rr.next_set(3)), vec![2]);
        assert_eq!(ids(&rr.next_set(3)), vec![0]);
        assert!(rr.phase().is_some());
    }

    /// The phase contract: round-robin phases stay in `[0, n)` and repeat
    /// with the schedule's period, so consumers can use them unmodified.
    #[test]
    fn round_robin_phase_is_normalized_to_period() {
        let mut rr = RoundRobin::new();
        let mut phases = Vec::new();
        for _ in 0..7 {
            phases.push(rr.phase().unwrap());
            rr.next_set(3);
        }
        assert_eq!(phases, vec![0, 1, 2, 0, 1, 2, 0]);
        // The Scripted tail inherits the same normalization.
        let mut s = Scripted::singletons([2, 2, 0, 1, 2]);
        for _ in 0..5 {
            s.next_set(3);
        }
        for _ in 0..9 {
            assert!(s.phase().unwrap() < 3);
            s.next_set(3);
        }
    }

    #[test]
    fn all_at_once_contains_everyone() {
        let mut a = AllAtOnce;
        assert_eq!(ids(&a.next_set(4)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_fair_is_reproducible_and_fair() {
        let mut a = RandomFair::new(7);
        let mut b = RandomFair::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let sa = a.next_set(4);
            assert_eq!(sa, b.next_set(4));
            seen[sa[0].index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "every node should activate");
        assert!(a.phase().is_none());
    }

    #[test]
    fn random_subsets_are_non_empty_and_reproducible() {
        let mut a = RandomSubsets::new(3);
        let mut b = RandomSubsets::new(3);
        for _ in 0..100 {
            let sa = a.next_set(5);
            assert!(!sa.is_empty());
            assert_eq!(sa, b.next_set(5));
        }
    }

    #[test]
    fn scripted_prefix_then_round_robin() {
        let mut s = Scripted::singletons([2, 2, 0]);
        assert_eq!(ids(&s.next_set(3)), vec![2]);
        assert!(s.phase().is_none());
        assert_eq!(ids(&s.next_set(3)), vec![2]);
        assert_eq!(ids(&s.next_set(3)), vec![0]);
        // Tail: round-robin from 0.
        assert_eq!(ids(&s.next_set(3)), vec![0]);
        assert_eq!(ids(&s.next_set(3)), vec![1]);
        assert!(s.phase().is_some());
    }
}
