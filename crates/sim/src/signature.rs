//! Configuration signatures for cycle detection.
//!
//! The sync engine's visible state — per node: the `PossibleExits` set,
//! the best route's exit, and the advertised set — is finite, so an
//! execution under a *periodic* activation sequence that revisits a
//! `(state, phase)` pair has entered a cycle: it will repeat forever.
//! Signatures are 64-bit hashes of the canonicalized state; the engine
//! additionally keeps the canonical form of visited states to rule out
//! hash collisions before declaring a cycle.

use ibgp_types::ExitPathId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Canonical form of one node's visible state.
///
/// The `Ord` impl gives configurations a total order so symmetry-reduced
/// searches can pick a lexicographically minimal orbit representative.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeStateKey {
    /// Sorted ids of `PossibleExits(v, t)`.
    pub possible: Vec<ExitPathId>,
    /// The best route's exit-path id, if any.
    pub best: Option<ExitPathId>,
    /// Sorted ids of the currently advertised set.
    pub advertised: Vec<ExitPathId>,
    /// Reflection attributes of the advertised paths under loop
    /// prevention, flattened per advertised path as
    /// `[from + 1 (0 = own E-BGP route), cluster-list length, ids...]`.
    /// Empty with loop prevention off. Peers read exactly the advertised
    /// set plus these attributes, so this is the finest state the
    /// transition function can distinguish.
    pub rr: Vec<u32>,
}

/// Canonical form of a full configuration (plus activation phase).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    /// Per-node states, indexed by router id.
    pub nodes: Vec<NodeStateKey>,
    /// Activation-sequence phase (periodic schedules only).
    pub phase: u64,
}

impl StateKey {
    /// A 64-bit digest for cheap prefiltering.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Rough heap footprint of this key in bytes, used by memory-bounded
    /// searches to decide when to compact their visited set. Counts the
    /// id payloads plus per-`Vec` bookkeeping; it is an estimate, not an
    /// allocator measurement.
    pub fn approx_bytes(&self) -> usize {
        const VEC_OVERHEAD: usize = 3 * std::mem::size_of::<usize>();
        let mut bytes = std::mem::size_of::<Self>() + self.nodes.len() * VEC_OVERHEAD;
        for node in &self.nodes {
            bytes += std::mem::size_of::<NodeStateKey>()
                + (node.possible.len() + node.advertised.len()) * std::mem::size_of::<ExitPathId>()
                + node.rr.len() * std::mem::size_of::<u32>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(best: Option<u32>, phase: u64) -> StateKey {
        StateKey {
            nodes: vec![NodeStateKey {
                possible: vec![ExitPathId::new(1), ExitPathId::new(2)],
                best: best.map(ExitPathId::new),
                advertised: vec![ExitPathId::new(1)],
                rr: Vec::new(),
            }],
            phase,
        }
    }

    #[test]
    fn equal_states_have_equal_digests() {
        assert_eq!(key(Some(1), 0).digest(), key(Some(1), 0).digest());
    }

    #[test]
    fn different_best_or_phase_changes_key() {
        assert_ne!(key(Some(1), 0), key(Some(2), 0));
        assert_ne!(key(Some(1), 0), key(Some(1), 1));
        assert_ne!(key(None, 0), key(Some(1), 0));
    }
}
