//! Message-latency models for the async engine.
//!
//! Transient oscillations are timing artifacts, so experiments need precise
//! control over per-message latency. All models are deterministic (seeded
//! where random). Delays are in abstract time units and are clamped to ≥ 1
//! by the engine; FIFO per session is enforced by the engine regardless of
//! what a model returns.

use ibgp_types::RouterId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of per-message latencies.
pub trait DelayModel {
    /// Latency for a message sent `from → to` at time `now`.
    fn delay(&mut self, from: RouterId, to: RouterId, now: u64) -> u64;
}

/// Every message takes the same time.
#[derive(Debug, Clone, Copy)]
pub struct FixedDelay(pub u64);

impl DelayModel for FixedDelay {
    fn delay(&mut self, _from: RouterId, _to: RouterId, _now: u64) -> u64 {
        self.0
    }
}

/// Uniformly random latency in `[min, max]`, reproducible per seed.
#[derive(Debug, Clone)]
pub struct SeededJitter {
    rng: StdRng,
    min: u64,
    max: u64,
}

impl SeededJitter {
    /// Latencies uniform in `[min, max]`.
    pub fn new(seed: u64, min: u64, max: u64) -> Self {
        assert!(min <= max, "empty latency range");
        Self {
            rng: StdRng::seed_from_u64(seed),
            min,
            max,
        }
    }
}

impl DelayModel for SeededJitter {
    fn delay(&mut self, _from: RouterId, _to: RouterId, _now: u64) -> u64 {
        self.rng.gen_range(self.min..=self.max)
    }
}

/// Arbitrary scripted latency: a closure over `(from, to, now)`. Used by
/// scenario reproductions (e.g. Table 1) that need one specific message
/// to arrive late.
pub struct FnDelay(Box<dyn FnMut(RouterId, RouterId, u64) -> u64>);

impl FnDelay {
    /// Wrap a latency function.
    pub fn new(f: impl FnMut(RouterId, RouterId, u64) -> u64 + 'static) -> Self {
        Self(Box::new(f))
    }
}

impl DelayModel for FnDelay {
    fn delay(&mut self, from: RouterId, to: RouterId, now: u64) -> u64 {
        (self.0)(from, to, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId::new(i)
    }

    #[test]
    fn fixed_delay_is_constant() {
        let mut d = FixedDelay(5);
        assert_eq!(d.delay(r(0), r(1), 0), 5);
        assert_eq!(d.delay(r(1), r(0), 99), 5);
    }

    #[test]
    fn jitter_is_reproducible_and_in_range() {
        let mut a = SeededJitter::new(42, 2, 7);
        let mut b = SeededJitter::new(42, 2, 7);
        for t in 0..100 {
            let da = a.delay(r(0), r(1), t);
            assert_eq!(da, b.delay(r(0), r(1), t));
            assert!((2..=7).contains(&da));
        }
    }

    #[test]
    fn fn_delay_sees_arguments() {
        let mut d =
            FnDelay::new(|from, to, now| from.raw() as u64 * 100 + to.raw() as u64 * 10 + now);
        assert_eq!(d.delay(r(1), r(2), 3), 123);
    }
}
