//! Oscillation-triggered extra-path advertisement — the §10 future-work
//! feature of the paper, made concrete.
//!
//! "It is possible to treat the propagation of extra routes as a feature
//! that is only triggered when route oscillations are detected for some
//! destination prefix." Here each router runs the *standard* single-best
//! advertisement until its own best route has flipped at least
//! `threshold` times within the last `window` time units; it then
//! upgrades itself permanently to the modified protocol's `Choose_set`
//! advertisement. Upgrades are per-router and monotone (no flapping
//! between modes), so a converging region never pays the extra
//! advertisement cost, while an oscillating region converts itself to
//! the provably convergent discipline.
//!
//! The detector is deliberately simple — a sliding window over local
//! best-route changes — because that is all a real router can observe
//! without new protocol machinery. The experiments show it suffices for
//! every oscillation in the paper.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Number of local best-route changes within `window` that triggers
    /// the upgrade.
    pub threshold: usize,
    /// Sliding-window length in simulated time units.
    pub window: u64,
}

impl AdaptivePolicy {
    /// A conservative default: eight flips within 200 time units.
    pub const DEFAULT: AdaptivePolicy = AdaptivePolicy {
        threshold: 8,
        window: 200,
    };
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Per-router detector state.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlipDetector {
    flips: VecDeque<u64>,
    upgraded: bool,
}

impl FlipDetector {
    /// Record a best-route change at `now`; returns true if this change
    /// triggers (or has already triggered) the upgrade.
    pub(crate) fn record(&mut self, now: u64, policy: AdaptivePolicy) -> bool {
        if self.upgraded {
            return true;
        }
        self.flips.push_back(now);
        while let Some(&t) = self.flips.front() {
            if now.saturating_sub(t) > policy.window {
                self.flips.pop_front();
            } else {
                break;
            }
        }
        if self.flips.len() >= policy.threshold {
            self.upgraded = true;
        }
        self.upgraded
    }

    /// Whether the router has switched to set advertisement.
    pub(crate) fn upgraded(&self) -> bool {
        self.upgraded
    }

    /// Reset on crash (a restarted router starts in standard mode).
    pub(crate) fn reset(&mut self) {
        self.flips.clear();
        self.upgraded = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_after_threshold_flips_in_window() {
        let policy = AdaptivePolicy {
            threshold: 3,
            window: 10,
        };
        let mut d = FlipDetector::default();
        assert!(!d.record(0, policy));
        assert!(!d.record(5, policy));
        assert!(d.record(9, policy), "third flip within the window");
        assert!(d.upgraded());
        // Sticky.
        assert!(d.record(1000, policy));
    }

    #[test]
    fn slow_flips_never_trigger() {
        let policy = AdaptivePolicy {
            threshold: 3,
            window: 10,
        };
        let mut d = FlipDetector::default();
        for t in [0u64, 20, 40, 60, 80, 100] {
            assert!(!d.record(t, policy), "t={t}");
        }
        assert!(!d.upgraded());
    }

    #[test]
    fn reset_clears_the_upgrade() {
        let policy = AdaptivePolicy {
            threshold: 1,
            window: 10,
        };
        let mut d = FlipDetector::default();
        assert!(d.record(0, policy));
        d.reset();
        assert!(!d.upgraded());
    }
}
