//! Event-driven, message-level simulation of I-BGP.
//!
//! The synchronous model of §4 deliberately abstracts message delays away
//! ("we do not explicitly model message delays in transit"); but the
//! paper's *transient* oscillations (Fig 2's ordering dependence, Fig 3 +
//! Table 1's delay-driven churn) live exactly in that gap. This engine
//! models them operationally:
//!
//! * each I-BGP session carries set-advertisement messages (a standard
//!   router's set is its single best exit; Walton reflectors send their
//!   per-AS vector; modified routers send `GoodExits`) with **per-session
//!   FIFO** delivery — BGP runs over TCP — and caller-controlled delays;
//! * routers keep per-peer Adj-RIB-In state, recompute their best route on
//!   every delivery, and push updates only when the transfer-filtered set
//!   for a peer actually changed;
//! * external events — E-BGP inject/withdraw, router crash and restart —
//!   can be scheduled at arbitrary times.
//!
//! The engine is deterministic: events are totally ordered by
//! `(time, sequence number)` and all randomness lives in the caller's
//! seeded [`DelayModel`].

mod adaptive;
mod delay;
mod event;
mod trace;

pub use adaptive::AdaptivePolicy;
pub use delay::{DelayModel, FixedDelay, FnDelay, SeededJitter};
pub use event::{AsyncEvent, AsyncOutcome};
pub use trace::best_history;
pub use trace::TraceEvent;

use crate::metrics::Metrics;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{
    choose_best, choose_set, route_at, transfer_set, walton_advertised_set, ProtocolVariant,
};
use ibgp_topology::Topology;
use ibgp_types::{BgpId, ExitPathId, ExitPathRef, Route, RouterId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// What sits in the event queue.
#[derive(Debug, Clone, PartialEq, Eq)]
enum QueueItem {
    /// An I-BGP advertisement-set message.
    Message {
        from: RouterId,
        to: RouterId,
        paths: Vec<ExitPathRef>,
    },
    /// A scheduled external event.
    External(AsyncEvent),
    /// A deferred advertisement becomes sendable (MRAI expiry).
    MraiExpire { from: RouterId, to: RouterId },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Queued {
    at: u64,
    seq: u64,
    item: QueueItem,
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-router state.
#[derive(Debug, Clone)]
struct ANode {
    up: bool,
    my_exits: Vec<ExitPathRef>,
    /// Last advertisement set received from each peer.
    rib_in: BTreeMap<RouterId, Vec<ExitPathRef>>,
    /// Last advertisement set sent to each peer (post transfer filter).
    sent: BTreeMap<RouterId, Vec<ExitPathRef>>,
    best: Option<Route>,
}

/// The event-driven simulator.
pub struct AsyncSim<'a> {
    topo: &'a Topology,
    config: ProtocolConfig,
    nodes: Vec<ANode>,
    queue: BinaryHeap<Reverse<Queued>>,
    /// Next-free arrival time per directed session, enforcing FIFO.
    session_clock: BTreeMap<(RouterId, RouterId), u64>,
    /// Minimum route advertisement interval (0 = send every change
    /// immediately). With a positive MRAI, rapid flaps within one window
    /// coalesce into the net change — the mechanism that lets real BGP
    /// escape wave-chasing oscillations like the Table 1 schedule.
    mrai: u64,
    /// Earliest time the next update may be sent, per directed session.
    next_allowed: BTreeMap<(RouterId, RouterId), u64>,
    /// Sessions with a deferred update awaiting MRAI expiry.
    pending: std::collections::BTreeSet<(RouterId, RouterId)>,
    /// RFC 4271-style MRAI jitter: each window is drawn uniformly from
    /// `[3·mrai/4, mrai]`. Without jitter, synchronized update waves can
    /// rotate forever (every router's flip spacing equals every window).
    mrai_jitter: Option<rand::rngs::StdRng>,
    delay: Box<dyn DelayModel>,
    now: u64,
    seq: u64,
    metrics: Metrics,
    trace: Vec<TraceEvent>,
    trace_limit: usize,
    /// §10 future-work feature: per-router oscillation detectors that
    /// upgrade a flapping router to `Choose_set` advertisement.
    adaptive: Option<AdaptivePolicy>,
    detectors: Vec<adaptive::FlipDetector>,
}

impl<'a> AsyncSim<'a> {
    /// Create a simulator; nothing is announced until [`AsyncSim::start`]
    /// or a scheduled event fires.
    pub fn new(
        topo: &'a Topology,
        config: ProtocolConfig,
        exits: Vec<ExitPathRef>,
        delay: Box<dyn DelayModel>,
    ) -> Self {
        let n = topo.len();
        let mut nodes = vec![
            ANode {
                up: true,
                my_exits: Vec::new(),
                rib_in: BTreeMap::new(),
                sent: BTreeMap::new(),
                best: None,
            };
            n
        ];
        for p in exits {
            assert!(p.exit_point().index() < n, "exit point out of range");
            nodes[p.exit_point().index()].my_exits.push(p);
        }
        for node in &mut nodes {
            node.my_exits.sort_by_key(|p| p.id());
        }
        Self {
            topo,
            config,
            nodes,
            queue: BinaryHeap::new(),
            session_clock: BTreeMap::new(),
            mrai: 0,
            next_allowed: BTreeMap::new(),
            pending: std::collections::BTreeSet::new(),
            mrai_jitter: None,
            delay,
            now: 0,
            seq: 0,
            metrics: Metrics::default(),
            trace: Vec::new(),
            trace_limit: 100_000,
            adaptive: None,
            detectors: vec![adaptive::FlipDetector::default(); n],
        }
    }

    /// Cap the retained trace (oldest events are kept; later ones dropped).
    pub fn set_trace_limit(&mut self, limit: usize) {
        self.trace_limit = limit;
    }

    /// Set the minimum route advertisement interval. With `0` (the
    /// default) every best-route change is pushed immediately; with a
    /// positive value, changes within one window coalesce into a single
    /// net update per session.
    pub fn set_mrai(&mut self, mrai: u64) {
        self.mrai = mrai;
    }

    /// Enable the oscillation-triggered upgrade of §10: routers start
    /// with the configured variant's advertisement and switch to the
    /// modified protocol's `Choose_set` set once their own best route
    /// flaps past the policy's threshold. Restarting routers reset to
    /// the base variant.
    pub fn set_adaptive(&mut self, policy: AdaptivePolicy) {
        self.adaptive = Some(policy);
    }

    /// Which routers have upgraded themselves to set advertisement.
    pub fn upgraded_routers(&self) -> Vec<RouterId> {
        self.topo
            .routers()
            .filter(|u| self.detectors[u.index()].upgraded())
            .collect()
    }

    /// Enable RFC 4271-style jitter on the MRAI: every window is drawn
    /// uniformly from `[3·mrai/4, mrai]` using a deterministic seed.
    /// Heterogeneous windows are what let coalescing actually terminate a
    /// circulating update wave; identical windows can sustain it forever.
    pub fn set_mrai_jitter(&mut self, seed: u64) {
        use rand::SeedableRng;
        self.mrai_jitter = Some(rand::rngs::StdRng::seed_from_u64(seed));
    }

    /// Draw the next MRAI window length.
    fn draw_mrai(&mut self) -> u64 {
        match (&mut self.mrai_jitter, self.mrai) {
            (_, 0) => 0,
            (None, m) => m,
            (Some(rng), m) => {
                use rand::Rng;
                rng.gen_range(m - m / 4..=m)
            }
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// The recorded trace.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// `BestRoute` of a node.
    pub fn best_route(&self, u: RouterId) -> Option<&Route> {
        self.nodes[u.index()].best.as_ref()
    }

    /// The best route's exit id.
    pub fn best_exit(&self, u: RouterId) -> Option<ExitPathId> {
        self.nodes[u.index()].best.as_ref().map(Route::exit_id)
    }

    /// Best exits of all nodes (the routing configuration).
    pub fn best_vector(&self) -> Vec<Option<ExitPathId>> {
        self.nodes
            .iter()
            .map(|s| s.best.as_ref().map(Route::exit_id))
            .collect()
    }

    /// Whether a node is up.
    pub fn is_up(&self, u: RouterId) -> bool {
        self.nodes[u.index()].up
    }

    /// Schedule an external event at an absolute time (must be ≥ now).
    pub fn schedule(&mut self, at: u64, event: AsyncEvent) {
        assert!(at >= self.now, "cannot schedule into the past");
        let q = Queued {
            at,
            seq: self.next_seq(),
            item: QueueItem::External(event),
        };
        self.queue.push(Reverse(q));
    }

    /// Kick the protocol off: every up node evaluates its E-BGP routes and
    /// sends its initial advertisements.
    pub fn start(&mut self) {
        for u in self.topo.routers() {
            if self.nodes[u.index()].up {
                self.reconsider(u);
            }
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.trace.len() < self.trace_limit {
            self.trace.push(ev);
        }
    }

    /// Recompute node `u`'s best route from its RIBs, and push updates to
    /// peers whose view changed.
    fn reconsider(&mut self, u: RouterId) {
        let (best, advertised) = self.evaluate(u);
        let old_best = self.nodes[u.index()].best.as_ref().map(Route::exit_id);
        let new_best = best.as_ref().map(Route::exit_id);
        if old_best != new_best {
            self.metrics.best_changes += 1;
            self.record(TraceEvent::BestChanged {
                at: self.now,
                node: u,
                from: old_best,
                to: new_best,
            });
            if let Some(policy) = self.adaptive {
                let was = self.detectors[u.index()].upgraded();
                let now_up = self.detectors[u.index()].record(self.now, policy);
                if now_up && !was {
                    self.record(TraceEvent::External {
                        at: self.now,
                        event: AsyncEvent::AdaptiveUpgrade { node: u },
                    });
                }
            }
        }
        self.nodes[u.index()].best = best;
        // Push to peers (subject to the MRAI window).
        for v in self.topo.ibgp().peers(u) {
            if !self.nodes[v.index()].up {
                continue;
            }
            let out = transfer_set(self.topo, u, v, &advertised);
            let unchanged = self.nodes[u.index()]
                .sent
                .get(&v)
                .is_some_and(|prev| *prev == out);
            if unchanged {
                continue;
            }
            let gate = self.next_allowed.get(&(u, v)).copied().unwrap_or(0);
            if self.now < gate {
                // Defer: coalesce further changes until the window opens.
                if self.pending.insert((u, v)) {
                    let q = Queued {
                        at: gate,
                        seq: self.next_seq(),
                        item: QueueItem::MraiExpire { from: u, to: v },
                    };
                    self.queue.push(Reverse(q));
                }
                continue;
            }
            self.nodes[u.index()].sent.insert(v, out.clone());
            if self.mrai > 0 {
                let window = self.draw_mrai();
                self.next_allowed.insert((u, v), self.now + window);
            }
            self.send(u, v, out);
        }
    }

    /// Compute (best route, full advertised set before transfer filtering)
    /// for a node from its current RIBs.
    fn evaluate(&self, u: RouterId) -> (Option<Route>, Vec<ExitPathRef>) {
        let node = &self.nodes[u.index()];
        if !node.up {
            return (None, Vec::new());
        }
        let mut gathered: BTreeMap<ExitPathId, (ExitPathRef, BgpId)> = BTreeMap::new();
        for p in &node.my_exits {
            gathered.insert(p.id(), (p.clone(), p.next_hop().bgp_id()));
        }
        for (&peer, paths) in &node.rib_in {
            let sender = self.topo.bgp_id(peer);
            for p in paths {
                gathered
                    .entry(p.id())
                    .and_modify(|(_, lf)| {
                        if p.exit_point() != u {
                            *lf = (*lf).min(sender);
                        }
                    })
                    .or_insert_with(|| (p.clone(), sender));
            }
        }
        let possible: Vec<ExitPathRef> = gathered.values().map(|(p, _)| p.clone()).collect();
        let routes: Vec<Route> = possible
            .iter()
            .map(|p| route_at(self.topo, u, p, gathered[&p.id()].1))
            .collect();
        let best = choose_best(self.config.policy, &routes);
        let effective = if self.detectors[u.index()].upgraded() {
            ProtocolVariant::Modified
        } else {
            self.config.variant
        };
        let advertised = match effective {
            ProtocolVariant::Standard => best
                .as_ref()
                .map(|r| vec![r.exit().clone()])
                .unwrap_or_default(),
            ProtocolVariant::Walton => {
                if self.topo.ibgp().is_reflector(u) {
                    walton_advertised_set(self.config.policy, &routes)
                } else {
                    best.as_ref()
                        .map(|r| vec![r.exit().clone()])
                        .unwrap_or_default()
                }
            }
            ProtocolVariant::Modified => choose_set(&possible, self.config.policy.med_mode),
        };
        (best, advertised)
    }

    /// Enqueue a message with the delay model's latency, preserving FIFO
    /// per directed session.
    fn send(&mut self, from: RouterId, to: RouterId, paths: Vec<ExitPathRef>) {
        let d = self.delay.delay(from, to, self.now).max(1);
        let clock = self.session_clock.entry((from, to)).or_insert(0);
        let at = (self.now + d).max(*clock + 1);
        *clock = at;
        self.metrics.messages += 1;
        self.metrics.paths_advertised += paths.len() as u64;
        self.record(TraceEvent::Sent {
            at: self.now,
            deliver_at: at,
            from,
            to,
            paths: paths.iter().map(|p| p.id()).collect(),
        });
        let q = Queued {
            at,
            seq: self.next_seq(),
            item: QueueItem::Message { from, to, paths },
        };
        self.queue.push(Reverse(q));
    }

    /// Process the next queued event, if any. Returns false when the queue
    /// is empty (quiescence).
    pub fn step(&mut self) -> bool {
        let Some(Reverse(q)) = self.queue.pop() else {
            return false;
        };
        self.now = q.at;
        self.metrics.activations += 1;
        match q.item {
            QueueItem::Message { from, to, paths } => {
                if !self.nodes[to.index()].up || !self.nodes[from.index()].up {
                    return true; // dropped on a dead session
                }
                self.record(TraceEvent::Delivered {
                    at: self.now,
                    from,
                    to,
                    paths: paths.iter().map(|p| p.id()).collect(),
                });
                self.nodes[to.index()].rib_in.insert(from, paths);
                self.reconsider(to);
            }
            QueueItem::External(ev) => self.apply_external(ev),
            QueueItem::MraiExpire { from, to } => {
                self.pending.remove(&(from, to));
                if !self.nodes[from.index()].up || !self.nodes[to.index()].up {
                    return true;
                }
                let (_, advertised) = self.evaluate(from);
                let out = transfer_set(self.topo, from, to, &advertised);
                let unchanged = self.nodes[from.index()]
                    .sent
                    .get(&to)
                    .is_some_and(|prev| *prev == out);
                if !unchanged {
                    self.nodes[from.index()].sent.insert(to, out.clone());
                    if self.mrai > 0 {
                        let window = self.draw_mrai();
                        self.next_allowed.insert((from, to), self.now + window);
                    }
                    self.send(from, to, out);
                }
            }
        }
        true
    }

    fn apply_external(&mut self, ev: AsyncEvent) {
        self.record(TraceEvent::External {
            at: self.now,
            event: ev.clone(),
        });
        match ev {
            AsyncEvent::Inject { path } => {
                let u = path.exit_point();
                let node = &mut self.nodes[u.index()];
                node.my_exits.retain(|p| p.id() != path.id());
                node.my_exits.push(path);
                node.my_exits.sort_by_key(|p| p.id());
                if node.up {
                    self.reconsider(u);
                }
            }
            AsyncEvent::Withdraw { id } => {
                for u in self.topo.routers() {
                    let node = &mut self.nodes[u.index()];
                    let before = node.my_exits.len();
                    node.my_exits.retain(|p| p.id() != id);
                    if node.my_exits.len() != before && node.up {
                        self.reconsider(u);
                    }
                }
            }
            AsyncEvent::NodeDown { node: u } => {
                self.nodes[u.index()].up = false;
                self.nodes[u.index()].rib_in.clear();
                self.nodes[u.index()].sent.clear();
                self.nodes[u.index()].best = None;
                self.pending.retain(|&(f, t)| f != u && t != u);
                self.next_allowed.retain(|&(f, t), _| f != u && t != u);
                self.detectors[u.index()].reset();
                // Drop in-flight messages on sessions touching u.
                let kept: Vec<Reverse<Queued>> = self
                    .queue
                    .drain()
                    .filter(|Reverse(q)| match &q.item {
                        QueueItem::Message { from, to, .. }
                        | QueueItem::MraiExpire { from, to } => *from != u && *to != u,
                        QueueItem::External(_) => true,
                    })
                    .collect();
                self.queue = kept.into();
                // Peers tear the session down: they lose u's routes.
                for v in self.topo.ibgp().peers(u) {
                    let peer = &mut self.nodes[v.index()];
                    let had = peer.rib_in.remove(&u).is_some();
                    peer.sent.remove(&u);
                    if had && peer.up {
                        self.reconsider(v);
                    }
                }
            }
            AsyncEvent::AdaptiveUpgrade { node: u } => {
                // External force-upgrade: mark and re-advertise.
                if let Some(policy) = self.adaptive {
                    // Saturate the detector by feeding it enough flips.
                    for _ in 0..policy.threshold {
                        self.detectors[u.index()].record(self.now, policy);
                    }
                } else {
                    // Without a policy, use a degenerate always-on one.
                    self.detectors[u.index()].record(
                        self.now,
                        AdaptivePolicy {
                            threshold: 1,
                            window: 1,
                        },
                    );
                }
                if self.nodes[u.index()].up {
                    self.reconsider(u);
                }
            }
            AsyncEvent::NodeUp { node: u } => {
                self.nodes[u.index()].up = true;
                // Session re-establishment: peers re-announce their state
                // to u; u announces its own (sent maps were cleared).
                self.reconsider(u);
                for v in self.topo.ibgp().peers(u) {
                    if self.nodes[v.index()].up {
                        self.reconsider(v);
                    }
                }
            }
        }
    }

    /// Drain the queue until quiescence or the event budget is exhausted.
    pub fn run(&mut self, max_events: u64) -> AsyncOutcome {
        for processed in 0..max_events {
            if !self.step() {
                return AsyncOutcome::Quiescent {
                    at: self.now,
                    events: processed,
                };
            }
        }
        if self.queue.is_empty() {
            AsyncOutcome::Quiescent {
                at: self.now,
                events: max_events,
            }
        } else {
            AsyncOutcome::Exhausted {
                events: max_events,
                best_changes: self.metrics.best_changes,
            }
        }
    }
}

#[cfg(test)]
mod tests;
