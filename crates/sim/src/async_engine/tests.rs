use super::*;
use crate::async_engine::trace::best_history;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_topology::TopologyBuilder;
use ibgp_types::{AsId, ExitPath, Med};
use std::sync::Arc;

fn r(i: u32) -> RouterId {
    RouterId::new(i)
}

fn exit(id: u32, next_as: u32, med: u32, exit_point: u32) -> ExitPathRef {
    Arc::new(
        ExitPath::builder(ExitPathId::new(id))
            .via(AsId::new(next_as))
            .med(Med::new(med))
            .exit_point(r(exit_point))
            .build_unchecked(),
    )
}

fn p(i: u32) -> ExitPathId {
    ExitPathId::new(i)
}

/// Full mesh of three; one exit propagates and the system quiesces.
#[test]
fn propagation_reaches_quiescence() {
    let topo = TopologyBuilder::new(3)
        .link(0, 1, 1)
        .link(1, 2, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0)],
        Box::new(FixedDelay(1)),
    );
    sim.start();
    let outcome = sim.run(10_000);
    assert!(outcome.quiescent(), "{outcome}");
    for u in 0..3 {
        assert_eq!(sim.best_exit(r(u)), Some(p(1)));
    }
    assert!(sim.metrics().messages >= 2);
}

/// The DISAGREE gadget: two clusters {RR0; c2}, {RR1; c3}; exits at the
/// clients through the same neighbor AS; each reflector is closer to the
/// *other* cluster's exit. Standard I-BGP: with symmetric delays the
/// reflectors flip forever; the modified protocol quiesces.
fn disagree_topo() -> ibgp_topology::Topology {
    TopologyBuilder::new(4)
        .link(0, 2, 10)
        .link(0, 3, 1)
        .link(1, 3, 10)
        .link(1, 2, 1)
        .cluster([0], [2])
        .cluster([1], [3])
        .build()
        .unwrap()
}

fn disagree_exits() -> Vec<ExitPathRef> {
    vec![exit(1, 1, 0, 2), exit(2, 1, 0, 3)]
}

#[test]
fn disagree_standard_oscillates_with_symmetric_delays() {
    let topo = disagree_topo();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        disagree_exits(),
        Box::new(FixedDelay(2)),
    );
    sim.start();
    let outcome = sim.run(2_000);
    match outcome {
        AsyncOutcome::Exhausted { best_changes, .. } => {
            assert!(
                best_changes > 100,
                "expected sustained flipping, got {best_changes}"
            );
        }
        AsyncOutcome::Quiescent { .. } => panic!("standard protocol should oscillate: {outcome}"),
    }
    // Both reflectors keep flipping between the two exits.
    let h0 = best_history(sim.trace(), r(0));
    assert!(h0.len() > 10, "reflector 0 flipped {} times", h0.len());
}

#[test]
fn disagree_standard_converges_with_asymmetric_delays() {
    let topo = disagree_topo();
    // Cluster 0's messages are much faster: RR1 hears p1 before RR0 hears
    // p2, breaking the symmetry (the paper's "stable if messages happen to
    // order well").
    let delay = FnDelay::new(|from, _to, _now| {
        if from.raw() == 0 || from.raw() == 2 {
            1
        } else {
            40
        }
    });
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        disagree_exits(),
        Box::new(delay),
    );
    sim.start();
    let outcome = sim.run(10_000);
    assert!(outcome.quiescent(), "{outcome}");
}

#[test]
fn disagree_modified_quiesces_with_symmetric_delays() {
    let topo = disagree_topo();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::MODIFIED,
        disagree_exits(),
        Box::new(FixedDelay(2)),
    );
    sim.start();
    let outcome = sim.run(10_000);
    assert!(outcome.quiescent(), "{outcome}");
    // Each reflector settles on the nearer (foreign) exit.
    assert_eq!(sim.best_exit(r(0)), Some(p(2)));
    assert_eq!(sim.best_exit(r(1)), Some(p(1)));
    // Clients keep their own E-BGP routes.
    assert_eq!(sim.best_exit(r(2)), Some(p(1)));
    assert_eq!(sim.best_exit(r(3)), Some(p(2)));
}

#[test]
fn modified_outcome_is_independent_of_delays() {
    let topo = disagree_topo();
    let mut reference: Option<Vec<Option<ExitPathId>>> = None;
    for seed in 0..10u64 {
        let mut sim = AsyncSim::new(
            &topo,
            ProtocolConfig::MODIFIED,
            disagree_exits(),
            Box::new(SeededJitter::new(seed, 1, 17)),
        );
        sim.start();
        let outcome = sim.run(50_000);
        assert!(outcome.quiescent(), "seed {seed}: {outcome}");
        let bv = sim.best_vector();
        match &reference {
            None => reference = Some(bv),
            Some(prev) => assert_eq!(*prev, bv, "seed {seed} diverged"),
        }
    }
}

#[test]
fn withdraw_flushes_and_requiesces() {
    let topo = TopologyBuilder::new(3)
        .link(0, 1, 1)
        .link(1, 2, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0), exit(2, 2, 0, 2)],
        Box::new(FixedDelay(1)),
    );
    sim.start();
    assert!(sim.run(10_000).quiescent());
    let t = sim.now();
    sim.schedule(t + 5, AsyncEvent::Withdraw { id: p(1) });
    assert!(sim.run(10_000).quiescent());
    for u in 0..3 {
        assert_eq!(sim.best_exit(r(u)), Some(p(2)), "node {u}");
    }
}

#[test]
fn crash_and_restart_recovers_routes() {
    // Exit lives at node 0; node 2 only learns it via I-BGP. Crash node 0:
    // everyone loses the route. Restart: it comes back.
    let topo = TopologyBuilder::new(3)
        .link(0, 1, 1)
        .link(1, 2, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::MODIFIED,
        vec![exit(1, 1, 0, 0)],
        Box::new(FixedDelay(1)),
    );
    sim.start();
    assert!(sim.run(10_000).quiescent());
    assert_eq!(sim.best_exit(r(2)), Some(p(1)));

    let t = sim.now();
    sim.schedule(t + 1, AsyncEvent::NodeDown { node: r(0) });
    assert!(sim.run(10_000).quiescent());
    assert!(!sim.is_up(r(0)));
    assert_eq!(sim.best_exit(r(2)), None, "route must be flushed");

    let t = sim.now();
    sim.schedule(t + 1, AsyncEvent::NodeUp { node: r(0) });
    assert!(sim.run(10_000).quiescent());
    assert_eq!(sim.best_exit(r(2)), Some(p(1)), "route must return");
}

#[test]
fn fifo_is_preserved_per_session() {
    // Even with a delay model that *shrinks* over time, deliveries on one
    // session must stay in send order.
    let topo = TopologyBuilder::new(2)
        .link(0, 1, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut big = 100u64;
    let delay = FnDelay::new(move |_f, _t, _now| {
        big = big.saturating_sub(30).max(1);
        big
    });
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 5, 0)],
        Box::new(delay),
    );
    sim.start();
    // Quickly replace the announcement twice; messages 2 and 3 get shorter
    // delays but may not overtake message 1.
    sim.schedule(
        1,
        AsyncEvent::Inject {
            path: exit(1, 1, 3, 0),
        },
    );
    sim.schedule(
        2,
        AsyncEvent::Inject {
            path: exit(1, 1, 1, 0),
        },
    );
    assert!(sim.run(10_000).quiescent());
    let mut last_arrival_per_session: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    for ev in sim.trace() {
        if let TraceEvent::Delivered { at, from, to, .. } = ev {
            let key = (from.raw(), to.raw());
            let prev = last_arrival_per_session.entry(key).or_insert(0);
            assert!(at >= prev, "FIFO violated on session {key:?}");
            *prev = *at;
        }
    }
    // Final state reflects the *last* injection.
    assert_eq!(sim.best_route(r(1)).unwrap().med(), Med::new(1));
}

#[test]
fn trace_records_sends_and_deliveries() {
    let topo = TopologyBuilder::new(2)
        .link(0, 1, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0)],
        Box::new(FixedDelay(3)),
    );
    sim.start();
    assert!(sim.run(100).quiescent());
    let sends: Vec<_> = sim
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Sent { .. }))
        .collect();
    let delivers: Vec<_> = sim
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
        .collect();
    assert_eq!(sends.len(), delivers.len());
    assert!(!sends.is_empty());
    if let TraceEvent::Sent { at, deliver_at, .. } = sends[0] {
        assert_eq!(*deliver_at, *at + 3);
    }
}

#[test]
fn messages_to_downed_nodes_are_dropped() {
    let topo = TopologyBuilder::new(2)
        .link(0, 1, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0)],
        Box::new(FixedDelay(50)),
    );
    sim.start();
    // Node 1 dies before node 0's initial announcement (in flight, arrives
    // at t=50) can be delivered.
    sim.schedule(10, AsyncEvent::NodeDown { node: r(1) });
    assert!(sim.run(1_000).quiescent());
    assert_eq!(sim.best_exit(r(1)), None);
}

#[test]
fn scheduling_into_the_past_panics() {
    let topo = TopologyBuilder::new(2)
        .link(0, 1, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0)],
        Box::new(FixedDelay(1)),
    );
    sim.start();
    assert!(sim.run(1_000).quiescent());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.schedule(0, AsyncEvent::Withdraw { id: p(1) });
    }));
    assert!(result.is_err());
}

#[test]
fn mrai_reduces_message_volume_on_churny_starts() {
    // Same scenario, same delays: with a (jittered) MRAI the engine sends
    // strictly fewer messages before quiescence than with none, because
    // intermediate states coalesce.
    let topo = TopologyBuilder::new(4)
        .link(0, 1, 1)
        .link(1, 2, 2)
        .link(2, 3, 3)
        .full_mesh()
        .build()
        .unwrap();
    let exits = vec![
        exit(1, 1, 5, 0),
        exit(2, 1, 3, 1),
        exit(3, 2, 0, 2),
        exit(4, 2, 7, 3),
    ];
    let run = |mrai: u64| -> u64 {
        let mut sim = AsyncSim::new(
            &topo,
            ProtocolConfig::MODIFIED,
            exits.clone(),
            Box::new(SeededJitter::new(5, 1, 7)),
        );
        if mrai > 0 {
            sim.set_mrai(mrai);
            sim.set_mrai_jitter(9);
        }
        sim.start();
        assert!(sim.run(100_000).quiescent());
        sim.metrics().messages
    };
    let without = run(0);
    let with = run(40);
    assert!(with <= without, "mrai={with} vs plain={without}");
}

#[test]
fn trace_limit_is_respected() {
    let topo = TopologyBuilder::new(3)
        .link(0, 1, 1)
        .link(1, 2, 1)
        .full_mesh()
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0), exit(2, 2, 0, 2)],
        Box::new(FixedDelay(1)),
    );
    sim.set_trace_limit(3);
    sim.start();
    assert!(sim.run(10_000).quiescent());
    assert_eq!(sim.trace().len(), 3, "oldest three events retained");
}

#[test]
fn adaptive_upgrade_event_displays() {
    let ev = AsyncEvent::AdaptiveUpgrade { node: r(4) };
    assert_eq!(ev.to_string(), "adaptive-upgrade r4");
}

#[test]
fn forced_upgrade_without_policy_uses_degenerate_detector() {
    // AdaptiveUpgrade scheduled on a sim with no adaptive policy must
    // still convert the router.
    let topo = TopologyBuilder::new(2)
        .link(0, 1, 1)
        .cluster([0], [1])
        .build()
        .unwrap();
    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        vec![exit(1, 1, 0, 0), exit(2, 2, 0, 1)],
        Box::new(FixedDelay(1)),
    );
    sim.start();
    assert!(sim.run(10_000).quiescent());
    assert!(sim.upgraded_routers().is_empty());
    let t = sim.now();
    sim.schedule(t + 1, AsyncEvent::AdaptiveUpgrade { node: r(0) });
    assert!(sim.run(10_000).quiescent());
    assert_eq!(sim.upgraded_routers(), vec![r(0)]);
}
