//! Structured execution traces.
//!
//! Every observable transition is recorded: messages sent (with their
//! scheduled delivery time) and delivered, best-route changes, and
//! external events. Scenario tests assert against these traces — e.g. the
//! Table 1 reproduction checks the exact sequence of best-route flips at
//! each router.

use super::event::AsyncEvent;
use ibgp_types::{ExitPathId, RouterId};
use std::fmt;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node queued an advertisement-set message.
    Sent {
        /// Send time.
        at: u64,
        /// Scheduled arrival time.
        deliver_at: u64,
        /// Sender.
        from: RouterId,
        /// Receiver.
        to: RouterId,
        /// Advertised exit-path ids (empty = withdraw-all).
        paths: Vec<ExitPathId>,
    },
    /// A message reached its receiver.
    Delivered {
        /// Delivery time.
        at: u64,
        /// Sender.
        from: RouterId,
        /// Receiver.
        to: RouterId,
        /// Advertised exit-path ids.
        paths: Vec<ExitPathId>,
    },
    /// A node's best route changed.
    BestChanged {
        /// Time of the change.
        at: u64,
        /// The node.
        node: RouterId,
        /// Previous best exit.
        from: Option<ExitPathId>,
        /// New best exit.
        to: Option<ExitPathId>,
    },
    /// An external event fired.
    External {
        /// Time it fired.
        at: u64,
        /// The event.
        event: AsyncEvent,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> u64 {
        match self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::BestChanged { at, .. }
            | TraceEvent::External { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ids(paths: &[ExitPathId]) -> String {
            if paths.is_empty() {
                "∅".to_string()
            } else {
                paths
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            }
        }
        match self {
            TraceEvent::Sent {
                at,
                deliver_at,
                from,
                to,
                paths,
            } => write!(
                f,
                "[{at}] {from}->{to} send {{{}}} (arrives {deliver_at})",
                ids(paths)
            ),
            TraceEvent::Delivered {
                at,
                from,
                to,
                paths,
            } => {
                write!(f, "[{at}] {to} <- {from} {{{}}}", ids(paths))
            }
            TraceEvent::BestChanged { at, node, from, to } => {
                let fmt_opt =
                    |o: &Option<ExitPathId>| o.map(|p| p.to_string()).unwrap_or_else(|| "∅".into());
                write!(f, "[{at}] {node} best {} -> {}", fmt_opt(from), fmt_opt(to))
            }
            TraceEvent::External { at, event } => write!(f, "[{at}] {event}"),
        }
    }
}

/// Extract the best-route flip history of one node from a trace.
pub fn best_history(trace: &[TraceEvent], node: RouterId) -> Vec<Option<ExitPathId>> {
    trace
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::BestChanged { node: n, to, .. } if *n == node => Some(*to),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_history_filters_by_node() {
        let trace = vec![
            TraceEvent::BestChanged {
                at: 1,
                node: RouterId::new(0),
                from: None,
                to: Some(ExitPathId::new(1)),
            },
            TraceEvent::BestChanged {
                at: 2,
                node: RouterId::new(1),
                from: None,
                to: Some(ExitPathId::new(2)),
            },
            TraceEvent::BestChanged {
                at: 3,
                node: RouterId::new(0),
                from: Some(ExitPathId::new(1)),
                to: Some(ExitPathId::new(2)),
            },
        ];
        assert_eq!(
            best_history(&trace, RouterId::new(0)),
            vec![Some(ExitPathId::new(1)), Some(ExitPathId::new(2))]
        );
    }

    #[test]
    fn display_is_compact() {
        let ev = TraceEvent::Sent {
            at: 3,
            deliver_at: 5,
            from: RouterId::new(0),
            to: RouterId::new(1),
            paths: vec![ExitPathId::new(9)],
        };
        assert_eq!(ev.to_string(), "[3] r0->r1 send {p9} (arrives 5)");
        assert_eq!(ev.at(), 3);
        let ev = TraceEvent::BestChanged {
            at: 4,
            node: RouterId::new(2),
            from: None,
            to: None,
        };
        assert_eq!(ev.to_string(), "[4] r2 best ∅ -> ∅");
    }
}
