//! External events and run outcomes for the async engine.

use ibgp_types::{ExitPathId, ExitPathRef, RouterId};
use std::fmt;

/// An external occurrence injected into a running simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncEvent {
    /// An E-BGP announcement arrives at its exit point (new or replacing
    /// a same-id announcement).
    Inject {
        /// The announced exit path.
        path: ExitPathRef,
    },
    /// The E-BGP announcement with this id is withdrawn at its exit point.
    Withdraw {
        /// Which announcement disappears.
        id: ExitPathId,
    },
    /// A router crashes: sessions drop, peers flush its routes, in-flight
    /// messages on its sessions are lost.
    NodeDown {
        /// The crashing router.
        node: RouterId,
    },
    /// A crashed router restarts: sessions re-establish and both sides
    /// re-announce their current state.
    NodeUp {
        /// The restarting router.
        node: RouterId,
    },
    /// A router's oscillation detector fired and it upgraded itself to
    /// `Choose_set` advertisement (§10 adaptive mode). Emitted by the
    /// engine into the trace; scheduling it externally forces an upgrade.
    AdaptiveUpgrade {
        /// The upgrading router.
        node: RouterId,
    },
}

impl fmt::Display for AsyncEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncEvent::Inject { path } => write!(f, "inject {path}"),
            AsyncEvent::Withdraw { id } => write!(f, "withdraw {id}"),
            AsyncEvent::NodeDown { node } => write!(f, "down {node}"),
            AsyncEvent::NodeUp { node } => write!(f, "up {node}"),
            AsyncEvent::AdaptiveUpgrade { node } => write!(f, "adaptive-upgrade {node}"),
        }
    }
}

/// How an async run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsyncOutcome {
    /// The event queue drained: no router has anything left to say. The
    /// routing configuration is stable.
    Quiescent {
        /// Simulated time of the last event.
        at: u64,
        /// Events processed.
        events: u64,
    },
    /// The event budget ran out with messages still in flight — the
    /// signature of an oscillation (or simply a budget set too low;
    /// `best_changes` tells the two apart).
    Exhausted {
        /// Events processed.
        events: u64,
        /// Total best-route flips seen, the oscillation witness.
        best_changes: u64,
    },
}

impl AsyncOutcome {
    /// True when the run reached quiescence.
    pub fn quiescent(&self) -> bool {
        matches!(self, AsyncOutcome::Quiescent { .. })
    }
}

impl fmt::Display for AsyncOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncOutcome::Quiescent { at, events } => {
                write!(f, "quiescent at t={at} after {events} events")
            }
            AsyncOutcome::Exhausted {
                events,
                best_changes,
            } => write!(
                f,
                "exhausted after {events} events ({best_changes} best-route changes)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AsyncOutcome::Quiescent { at: 1, events: 2 }.quiescent());
        assert!(!AsyncOutcome::Exhausted {
            events: 5,
            best_changes: 3
        }
        .quiescent());
    }

    #[test]
    fn display_formats() {
        let s = AsyncOutcome::Quiescent { at: 7, events: 9 }.to_string();
        assert!(s.contains("t=7"), "{s}");
        let s = AsyncEvent::NodeDown {
            node: RouterId::new(2),
        }
        .to_string();
        assert_eq!(s, "down r2");
    }
}
