//! # ibgp-serve
//!
//! Classification-as-a-service on top of [`ibgp_hunt::classify_spec`]:
//!
//! * [`store`] — the [`VerdictStore`]: verdicts keyed by the canonical
//!   structural signature, with an append-only fsynced log and
//!   budget-compatibility rules that prevent a small-budget inconclusive
//!   verdict from poisoning larger-budget requests.
//! * [`sched`] — the bounded [`Scheduler`]: N concurrent searches over a
//!   FIFO queue, per-request budgets, store consultation before every
//!   search, and in-flight dedup so isomorphic requests share one search.
//! * [`server`] — the `ibgp-cli serve` daemon: a hand-rolled
//!   line-delimited TCP protocol (request = budget header + `.ibgp` text,
//!   response = verdict + `cached:` flag).
//! * [`batch`] — `ibgp-cli batch`: classify a directory through the same
//!   scheduler and render a deterministic JSON report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod sched;
pub mod server;
pub mod store;

pub use batch::{report_json, run_batch, BatchEntry, BatchOutcome};
pub use sched::{Answer, JobResult, Request, Scheduler, Ticket};
pub use server::{parse_header, submit_text, Response, Server};
pub use store::{
    class_from_keyword, class_keyword, vectors_from_token, vectors_token, Entry, StoredBudget,
    VerdictStore,
};
