//! The signature-keyed verdict store.
//!
//! Classification is expensive and verdicts are label-invariant, so the
//! store keys completed verdicts by the canonical structural signature
//! ([`ibgp_hunt::signature`]) — any isomorphic relabeling of a stored
//! specimen is answered without a search.
//!
//! ## Budget semantics (the cache-poisoning guard)
//!
//! A *complete* verdict is the answer to the classification question and
//! is served to every request. An *inconclusive* verdict only says "the
//! granted budget was not enough", so it is served only to requests whose
//! budget is no larger than the one the stored search ran under —
//! otherwise a capped small-budget search would poison answers for
//! callers who asked for (and would get) a bigger one. Deadline-stopped
//! verdicts are never stored at all: wall-clock expiry says nothing
//! reproducible about any budget.
//!
//! Entries also remember which backend produced them
//! ([`ibgp_types::VerdictOrigin`]). A *complete* verdict answers the same
//! question whichever backend proved it, so completeness trumps origin.
//! An *inconclusive* verdict is backend-specific evidence ("this budget
//! was not enough *for that backend*") and is served only to requests
//! asking for the same backend.
//!
//! ## Persistence
//!
//! The store is an append-only text log, one entry per line, fsynced on
//! every insert. On open the log is replayed through the same
//! strongest-entry-wins upgrade rule used at runtime, so a log carrying
//! both a capped probe and the later complete verdict resolves to the
//! complete one regardless of order.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::Verdict;
use ibgp_types::{ExitPathId, SolverMode, StopReason, VerdictOrigin};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// The budget a stored search ran under — the persistable subset of
/// [`ibgp_hunt::HuntOptions`] that bounds how much of the state space a
/// search could have seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredBudget {
    /// State cap the search ran under.
    pub max_states: usize,
    /// Visited-set byte budget; `None` for unbounded.
    pub max_bytes: Option<usize>,
}

impl StoredBudget {
    /// Whether a search under `self` explored at least as much as a
    /// search under `req` could: `req.max_states` no larger, and the
    /// byte budget no looser (`None` = unbounded is the strongest).
    pub fn covers(&self, req: &StoredBudget) -> bool {
        req.max_states <= self.max_states
            && match (self.max_bytes, req.max_bytes) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(have), Some(want)) => want <= have,
            }
    }
}

impl From<&ibgp_hunt::HuntOptions> for StoredBudget {
    fn from(o: &ibgp_hunt::HuntOptions) -> Self {
        Self {
            max_states: o.max_states,
            max_bytes: o.max_bytes,
        }
    }
}

/// One stored verdict plus the budget that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The verdict (metrics are not persisted; reloaded entries carry
    /// `metrics: None`).
    pub verdict: Verdict,
    /// The budget the producing search ran under.
    pub budget: StoredBudget,
}

/// The [`VerdictOrigin`] a request under `mode` expects its evidence
/// from (search requests want search evidence, sat requests solver
/// evidence).
fn expected_origin(mode: SolverMode) -> VerdictOrigin {
    match mode {
        SolverMode::Search => VerdictOrigin::Search,
        SolverMode::Sat => VerdictOrigin::Solver,
    }
}

impl Entry {
    /// Whether this entry may answer a request under `req` asking for
    /// backend `mode` (see the module docs for the poisoning guard).
    /// Complete verdicts serve every request regardless of origin;
    /// inconclusive ones only same-backend requests with covered budgets.
    pub fn servable_for(&self, req: &StoredBudget, mode: SolverMode) -> bool {
        self.verdict.complete
            || (self.verdict.origin == expected_origin(mode) && self.budget.covers(req))
    }

    /// Whether this entry supersedes `old` under strongest-entry-wins:
    /// complete beats inconclusive, and among inconclusive entries the
    /// same-backend one whose budget covers the other's wins.
    fn supersedes(&self, old: &Entry) -> bool {
        if old.verdict.complete {
            return false;
        }
        self.verdict.complete
            || (self.verdict.origin == old.verdict.origin && self.budget.covers(&old.budget))
    }
}

/// Signature-keyed verdict store with an optional append-only log.
#[derive(Debug)]
pub struct VerdictStore {
    entries: HashMap<String, Entry>,
    log: Option<File>,
    path: Option<PathBuf>,
}

impl VerdictStore {
    /// A purely in-memory store (no persistence).
    pub fn in_memory() -> Self {
        Self {
            entries: HashMap::new(),
            log: None,
            path: None,
        }
    }

    /// Open (or create) a store backed by the log at `path`, replaying
    /// any existing entries.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut entries = HashMap::new();
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for (ln, line) in reader.lines().enumerate() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let (sig, entry) = parse_line(&line).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}:{}: malformed verdict-store line",
                            path.display(),
                            ln + 1
                        ),
                    )
                })?;
                apply(&mut entries, sig, entry);
            }
        }
        let log = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            entries,
            log: Some(log),
            path: Some(path.to_path_buf()),
        })
    }

    /// The log path, when persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of distinct signatures stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The verdict for `sig` servable under `req` with backend `mode`,
    /// if any.
    pub fn lookup(&self, sig: &str, req: &StoredBudget, mode: SolverMode) -> Option<&Verdict> {
        let entry = self.entries.get(sig)?;
        entry.servable_for(req, mode).then_some(&entry.verdict)
    }

    /// Insert a verdict produced under `budget`. Returns `true` if the
    /// store changed. Deadline-stopped verdicts are rejected (never
    /// cacheable), and an entry never replaces a stronger one.
    pub fn insert(
        &mut self,
        sig: &str,
        verdict: &Verdict,
        budget: StoredBudget,
    ) -> io::Result<bool> {
        if verdict.stop == StopReason::Deadline {
            return Ok(false);
        }
        let mut verdict = verdict.clone();
        verdict.metrics = None;
        let entry = Entry { verdict, budget };
        match self.entries.get(sig) {
            Some(old) if !entry.supersedes(old) => return Ok(false),
            _ => {}
        }
        if let Some(log) = &mut self.log {
            let line = format_line(sig, &entry);
            log.write_all(line.as_bytes())?;
            log.flush()?;
            log.sync_data()?;
        }
        self.entries.insert(sig.to_string(), entry);
        Ok(true)
    }
}

fn apply(entries: &mut HashMap<String, Entry>, sig: String, entry: Entry) {
    match entries.get(&sig) {
        Some(old) if !entry.supersedes(old) => {}
        _ => {
            entries.insert(sig, entry);
        }
    }
}

/// The stable machine keyword for a class (`persistent` / `transient` /
/// `stable` / `unknown`), shared by the store log, the wire protocol,
/// and the batch report.
pub fn class_keyword(class: OscillationClass) -> &'static str {
    match class {
        OscillationClass::Persistent => "persistent",
        OscillationClass::Transient => "transient",
        OscillationClass::Stable => "stable",
        OscillationClass::Unknown => "unknown",
    }
}

/// Parse a [`class_keyword`] back.
pub fn class_from_keyword(s: &str) -> Option<OscillationClass> {
    match s {
        "persistent" => Some(OscillationClass::Persistent),
        "transient" => Some(OscillationClass::Transient),
        "stable" => Some(OscillationClass::Stable),
        "unknown" => Some(OscillationClass::Unknown),
        _ => None,
    }
}

/// Stable best-exit vectors as one log token: vectors `;`-separated,
/// entries `,`-separated, each `-` (no route) or the raw exit-path id;
/// `-` alone for an empty vector set.
pub fn vectors_token(vs: &[Vec<Option<ExitPathId>>]) -> String {
    if vs.is_empty() {
        return "-".into();
    }
    vs.iter()
        .map(|v| {
            v.iter()
                .map(|e| match e {
                    Some(p) => p.raw().to_string(),
                    None => "-".into(),
                })
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parse a [`vectors_token`] back.
pub fn vectors_from_token(s: &str) -> Option<Vec<Vec<Option<ExitPathId>>>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(';')
        .map(|v| {
            v.split(',')
                .map(|e| {
                    if e == "-" {
                        Some(None)
                    } else {
                        e.parse::<u32>().ok().map(|n| Some(ExitPathId::new(n)))
                    }
                })
                .collect::<Option<Vec<_>>>()
        })
        .collect()
}

/// `v1 <sig> <max_states> <max_bytes|-> <class> <states> <stop> <vectors> [solver]\n`
///
/// The trailing `solver` token is present exactly when the verdict came
/// from the constraint solver; its absence means search, so logs written
/// before the solver backend existed replay unchanged.
fn format_line(sig: &str, e: &Entry) -> String {
    format!(
        "v1 {} {} {} {} {} {} {}{}\n",
        sig,
        e.budget.max_states,
        e.budget
            .max_bytes
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".into()),
        class_keyword(e.verdict.class),
        e.verdict.states,
        e.verdict.stop.token(),
        vectors_token(&e.verdict.stable_vectors),
        match e.verdict.origin {
            VerdictOrigin::Search => "",
            VerdictOrigin::Solver => " solver",
        },
    )
}

fn parse_line(line: &str) -> Option<(String, Entry)> {
    let mut t = line.split_whitespace();
    if t.next()? != "v1" {
        return None;
    }
    let sig = t.next()?.to_string();
    let max_states: usize = t.next()?.parse().ok()?;
    let max_bytes = match t.next()? {
        "-" => None,
        s => Some(s.parse().ok()?),
    };
    let class = class_from_keyword(t.next()?)?;
    let states: usize = t.next()?.parse().ok()?;
    let stop = StopReason::from_token(t.next()?)?;
    let stable_vectors = vectors_from_token(t.next()?)?;
    let origin = match t.next() {
        None => VerdictOrigin::Search,
        Some("solver") => VerdictOrigin::Solver,
        Some(_) => return None,
    };
    if t.next().is_some() {
        return None;
    }
    let complete = stop.is_complete();
    let stable_count =
        (complete && origin == VerdictOrigin::Solver).then_some(stable_vectors.len());
    let verdict = Verdict {
        class,
        states,
        complete,
        stop,
        stable_vectors,
        metrics: None,
        origin,
        stable_count,
    };
    Some((
        sig,
        Entry {
            verdict,
            budget: StoredBudget {
                max_states,
                max_bytes,
            },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(class: OscillationClass, stop: StopReason) -> Verdict {
        Verdict {
            class,
            states: 42,
            complete: stop.is_complete(),
            stop,
            stable_vectors: vec![vec![Some(ExitPathId::new(1)), None]],
            metrics: None,
            origin: VerdictOrigin::Search,
            stable_count: None,
        }
    }

    fn solver_verdict(class: OscillationClass, stop: StopReason) -> Verdict {
        let complete = stop.is_complete();
        Verdict {
            class,
            states: 0,
            complete,
            stop,
            stable_vectors: vec![vec![Some(ExitPathId::new(1)), None]],
            metrics: None,
            origin: VerdictOrigin::Solver,
            stable_count: complete.then_some(1),
        }
    }

    fn b(max_states: usize) -> StoredBudget {
        StoredBudget {
            max_states,
            max_bytes: None,
        }
    }

    #[test]
    fn budget_cover_is_pointwise() {
        assert!(b(100).covers(&b(100)));
        assert!(b(100).covers(&b(50)));
        assert!(!b(100).covers(&b(200)));
        let bounded = StoredBudget {
            max_states: 100,
            max_bytes: Some(1024),
        };
        assert!(b(100).covers(&bounded), "unbounded memory covers bounded");
        assert!(
            !bounded.covers(&b(100)),
            "bounded memory cannot cover unbounded"
        );
        assert!(bounded.covers(&StoredBudget {
            max_states: 100,
            max_bytes: Some(512),
        }));
        assert!(!bounded.covers(&StoredBudget {
            max_states: 100,
            max_bytes: Some(2048),
        }));
    }

    #[test]
    fn complete_serves_everyone_inconclusive_only_smaller_budgets() {
        let mut store = VerdictStore::in_memory();
        let capped = verdict(OscillationClass::Unknown, StopReason::StateCap(10));
        assert!(store.insert("s", &capped, b(10)).unwrap());
        assert!(store.lookup("s", &b(10), SolverMode::Search).is_some());
        assert!(store.lookup("s", &b(5), SolverMode::Search).is_some());
        assert!(
            store.lookup("s", &b(100), SolverMode::Search).is_none(),
            "a capped verdict must not answer a larger-budget request"
        );
        let complete = verdict(OscillationClass::Stable, StopReason::Complete);
        assert!(store.insert("s", &complete, b(100)).unwrap());
        assert!(store
            .lookup("s", &b(1_000_000), SolverMode::Search)
            .is_some());
        // And the complete entry cannot be downgraded again.
        assert!(!store.insert("s", &capped, b(10)).unwrap());
        assert_eq!(
            store.lookup("s", &b(5), SolverMode::Search).unwrap().class,
            OscillationClass::Stable
        );
    }

    #[test]
    fn inconclusive_entries_serve_only_their_own_backend() {
        let mut store = VerdictStore::in_memory();
        let capped = verdict(OscillationClass::Unknown, StopReason::StateCap(10));
        assert!(store.insert("s", &capped, b(10)).unwrap());
        assert!(
            store.lookup("s", &b(5), SolverMode::Sat).is_none(),
            "inconclusive search evidence says nothing about a solver run"
        );
        // An inconclusive solver entry does not displace (same-sig)
        // inconclusive search evidence, and vice versa.
        let solver_capped = solver_verdict(OscillationClass::Unknown, StopReason::StateCap(10));
        assert!(!store.insert("s", &solver_capped, b(10)).unwrap());
        // A *complete* solver verdict serves every backend and wins.
        let solved = solver_verdict(OscillationClass::Transient, StopReason::Complete);
        assert!(store.insert("s", &solved, b(10)).unwrap());
        let v = store
            .lookup("s", &b(1_000_000), SolverMode::Search)
            .unwrap();
        assert_eq!(v.origin, VerdictOrigin::Solver);
        assert_eq!(v.stable_count, Some(1));
        assert!(store.lookup("s", &b(1_000_000), SolverMode::Sat).is_some());
    }

    #[test]
    fn deadline_stopped_verdicts_are_never_stored() {
        let mut store = VerdictStore::in_memory();
        let v = verdict(OscillationClass::Unknown, StopReason::Deadline);
        assert!(!store.insert("s", &v, b(10)).unwrap());
        assert!(store.is_empty());
    }

    #[test]
    fn log_lines_round_trip() {
        for stop in [
            StopReason::Complete,
            StopReason::StateCap(7),
            StopReason::MemoryBudget(4096),
        ] {
            let class = if stop.is_complete() {
                OscillationClass::Transient
            } else {
                OscillationClass::Unknown
            };
            let e = Entry {
                verdict: verdict(class, stop),
                budget: StoredBudget {
                    max_states: 99,
                    max_bytes: Some(1 << 20),
                },
            };
            let line = format_line("c:abc", &e);
            let (sig, back) = parse_line(line.trim_end()).unwrap();
            assert_eq!(sig, "c:abc");
            assert_eq!(back, e);
            // Solver-origin entries round-trip through the trailing token.
            let e = Entry {
                verdict: solver_verdict(class, stop),
                budget: StoredBudget {
                    max_states: 99,
                    max_bytes: None,
                },
            };
            let line = format_line("c:abc", &e);
            assert!(line.trim_end().ends_with(" solver"));
            let (_, back) = parse_line(line.trim_end()).unwrap();
            assert_eq!(back, e);
        }
        assert!(parse_line("v2 x 1 - stable 1 complete -").is_none());
        assert!(parse_line("v1 x notanumber - stable 1 complete -").is_none());
        assert!(parse_line("v1 x 1 - stable 1 complete - smt").is_none());
        assert!(parse_line("v1 x 1 - stable 1 complete - solver extra").is_none());
    }

    #[test]
    fn vectors_tokens_round_trip() {
        let vs = vec![
            vec![Some(ExitPathId::new(0)), None, Some(ExitPathId::new(3))],
            vec![None],
        ];
        assert_eq!(vectors_token(&vs), "0,-,3;-");
        assert_eq!(vectors_from_token("0,-,3;-").unwrap(), vs);
        assert_eq!(vectors_token(&[]), "-");
        assert_eq!(
            vectors_from_token("-").unwrap(),
            Vec::<Vec<Option<ExitPathId>>>::new()
        );
        assert!(vectors_from_token("0,x").is_none());
    }

    #[test]
    fn persistent_store_replays_strongest_entry() {
        let dir = std::env::temp_dir().join(format!("ibgp-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.log");
        {
            let mut store = VerdictStore::open(&path).unwrap();
            let capped = verdict(OscillationClass::Unknown, StopReason::StateCap(10));
            store.insert("s", &capped, b(10)).unwrap();
            let complete = verdict(OscillationClass::Stable, StopReason::Complete);
            store.insert("s", &complete, b(100)).unwrap();
        }
        let store = VerdictStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        let v = store
            .lookup("s", &b(1_000_000), SolverMode::Search)
            .unwrap();
        assert_eq!(v.class, OscillationClass::Stable);
        assert!(v.complete);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
