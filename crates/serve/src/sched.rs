//! The bounded classification scheduler.
//!
//! One scheduler owns the [`VerdictStore`] and a fixed pool of worker
//! threads. Requests queue FIFO; each carries its own search budget
//! (`max_states` / `max_bytes` / a relative deadline). Before a search
//! runs the store is consulted — at submission *and* again when a worker
//! picks the job up, so a burst of isomorphic requests costs one search:
//! the first populates the store and the rest resolve as cache hits. Two
//! queued requests with the same signature additionally share one job
//! outright when the earlier job's budget covers the later request's
//! (never when a deadline is involved — deadlines are wall-clock and not
//! comparable across requests).

use crate::store::{StoredBudget, VerdictStore};
use ibgp_hunt::{classify_spec, signature, HuntOptions, ScenarioSpec, SpecKind, Verdict};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One classification request: the search knobs plus an optional
/// *relative* deadline, converted to an absolute [`HuntOptions::deadline`]
/// only when the search actually starts (queue wait must not eat the
/// search's time budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Search knobs (the `deadline` field is ignored; use `deadline_ms`).
    pub opts: HuntOptions,
    /// Wall-clock budget for the search itself, in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request with default knobs and no deadline.
    pub fn new(opts: HuntOptions) -> Self {
        Self {
            opts,
            deadline_ms: None,
        }
    }

    fn budget(&self) -> StoredBudget {
        StoredBudget::from(&self.opts)
    }
}

/// How a finished request was answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// The verdict.
    pub verdict: Verdict,
    /// Whether it came from the store (no search ran for this request).
    pub cached: bool,
    /// The canonical signature the request resolved to.
    pub signature: String,
}

/// Result a ticket resolves to: the answer, or a spec/build error.
pub type JobResult = Result<Answer, String>;

struct Job {
    spec: ScenarioSpec,
    sig: String,
    request: Request,
    cell: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl Job {
    fn finish(&self, result: JobResult) {
        let mut cell = self.cell.lock().unwrap();
        *cell = Some(result);
        self.done.notify_all();
    }
}

/// A handle to one submitted request; [`Ticket::wait`] blocks until the
/// scheduler answers it.
pub struct Ticket {
    job: Arc<Job>,
}

impl Ticket {
    /// Block until the request is answered.
    pub fn wait(&self) -> JobResult {
        let mut cell = self.job.cell.lock().unwrap();
        loop {
            if let Some(r) = cell.as_ref() {
                return r.clone();
            }
            cell = self.job.done.wait(cell).unwrap();
        }
    }
}

struct Queue {
    jobs: VecDeque<Arc<Job>>,
    running: Vec<Arc<Job>>,
    shutdown: bool,
}

struct Inner {
    store: Mutex<VerdictStore>,
    queue: Mutex<Queue>,
    work: Condvar,
    searches_run: AtomicU64,
    cache_hits: AtomicU64,
}

/// The scheduler. Dropping it shuts the worker pool down (queued jobs
/// are answered with an error).
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// A scheduler over `store` with `workers` concurrent searches.
    pub fn new(store: VerdictStore, workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            store: Mutex::new(store),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                running: Vec::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            searches_run: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Submit one spec for classification. Returns immediately; the
    /// ticket resolves when the store answers or a worker finishes.
    pub fn submit(&self, mut spec: ScenarioSpec, request: Request) -> Ticket {
        // Fold the loop-prevention knob into the spec *before* the
        // signature is computed: the mechanics change verdicts, so an
        // lp request must never share a store entry or an in-flight job
        // with the plain classification of the same structure.
        if request.opts.loop_prevention {
            if let SpecKind::Reflection(r) = &mut spec.kind {
                r.loop_prevention = true;
            }
        }
        let sig = signature(&spec);
        // Answer straight from the store when a servable entry exists.
        {
            let store = self.inner.store.lock().unwrap();
            if let Some(v) = store.lookup(&sig, &request.budget(), request.opts.solver) {
                self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
                let job = Arc::new(Job {
                    spec,
                    sig: sig.clone(),
                    request,
                    cell: Mutex::new(Some(Ok(Answer {
                        verdict: v.clone(),
                        cached: true,
                        signature: sig,
                    }))),
                    done: Condvar::new(),
                });
                return Ticket { job };
            }
        }
        let mut queue = self.inner.queue.lock().unwrap();
        // In-flight dedup: ride an existing job whose budget covers this
        // request. Deadline jobs are never shared — their effective
        // budget is wall-clock and not comparable — and neither are jobs
        // asking for a different classification backend.
        if request.deadline_ms.is_none() {
            let candidate = queue.jobs.iter().chain(queue.running.iter()).find(|j| {
                j.sig == sig
                    && j.request.deadline_ms.is_none()
                    && j.request.opts.solver == request.opts.solver
                    && j.request.budget().covers(&request.budget())
            });
            if let Some(job) = candidate {
                return Ticket {
                    job: Arc::clone(job),
                };
            }
        }
        let job = Arc::new(Job {
            spec,
            sig,
            request,
            cell: Mutex::new(None),
            done: Condvar::new(),
        });
        queue.jobs.push_back(Arc::clone(&job));
        drop(queue);
        self.inner.work.notify_one();
        Ticket { job }
    }

    /// Searches the worker pool actually ran.
    pub fn searches_run(&self) -> u64 {
        self.inner.searches_run.load(Ordering::Relaxed)
    }

    /// Requests answered from the store without a search.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Run `f` with the store locked (for size inspection or snapshots).
    pub fn with_store<R>(&self, f: impl FnOnce(&VerdictStore) -> R) -> R {
        f(&self.inner.store.lock().unwrap())
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut queue = self.inner.queue.lock().unwrap();
            queue.shutdown = true;
            for job in queue.jobs.drain(..) {
                job.finish(Err("scheduler shut down".into()));
            }
        }
        self.inner.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if queue.shutdown {
                    return;
                }
                if let Some(job) = queue.jobs.pop_front() {
                    queue.running.push(Arc::clone(&job));
                    break job;
                }
                queue = inner.work.wait(queue).unwrap();
            }
        };
        run_job(inner, &job);
        let mut queue = inner.queue.lock().unwrap();
        queue.running.retain(|j| !Arc::ptr_eq(j, &job));
    }
}

fn run_job(inner: &Inner, job: &Job) {
    // Re-check the store: an isomorphic job may have completed while this
    // one sat in the queue.
    {
        let store = inner.store.lock().unwrap();
        if let Some(v) = store.lookup(&job.sig, &job.request.budget(), job.request.opts.solver) {
            inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            job.finish(Ok(Answer {
                verdict: v.clone(),
                cached: true,
                signature: job.sig.clone(),
            }));
            return;
        }
    }
    let mut opts = job.request.opts;
    opts.deadline = job
        .request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    inner.searches_run.fetch_add(1, Ordering::Relaxed);
    match classify_spec(&job.spec, &opts) {
        Ok(verdict) => {
            let mut store = inner.store.lock().unwrap();
            if let Err(e) = store.insert(&job.sig, &verdict, job.request.budget()) {
                drop(store);
                job.finish(Err(format!("verdict store write failed: {e}")));
                return;
            }
            drop(store);
            job.finish(Ok(Answer {
                verdict,
                cached: false,
                signature: job.sig.clone(),
            }));
        }
        Err(e) => job.finish(Err(format!("invalid scenario: {e}"))),
    }
}
