//! The line-delimited TCP protocol and daemon.
//!
//! One request per connection:
//!
//! ```text
//! classify [max-states=N] [max-bytes=N] [deadline-ms=N] [symmetry=0|1] [por=0|1] [solver=sat|search] [loop-prevention=0|1]
//! <.ibgp text, verbatim>
//! end
//! ```
//!
//! Response:
//!
//! ```text
//! ok class=<keyword> states=<n> stop=<token> complete=<bool> cached=<bool> origin=<search|solver> stable=<k>
//! vector <entry> <entry> ...        (k lines; entries `-` or raw exit id)
//! end
//! ```
//!
//! or `err <message>` followed by `end`. A bare `ping` line answers
//! `ok pong` / `end` (liveness probe). The terminator is safe: `end` is
//! not a directive of the `.ibgp` format, so no valid spec contains it
//! as a line.

use crate::sched::{Request, Scheduler};
use crate::store::{class_keyword, vectors_token};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running daemon; dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sched: Arc<Scheduler>,
}

impl Server {
    /// Bind `addr` and serve `sched` until shutdown.
    pub fn bind(addr: impl ToSocketAddrs, sched: Arc<Scheduler>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let sched = Arc::clone(&sched);
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &sched);
                    });
                }
            })
        };
        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
            sched,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler behind this server.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, sched: &Scheduler) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Ok(());
    }
    let header = header.trim_end();
    if header == "ping" {
        writer.write_all(b"ok pong\nend\n")?;
        return Ok(());
    }
    let request = match parse_header(header) {
        Ok(r) => r,
        Err(e) => return respond_err(&mut writer, &e),
    };
    let mut text = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return respond_err(&mut writer, "connection closed before `end`");
        }
        if line.trim_end() == "end" {
            break;
        }
        text.push_str(&line);
    }
    let spec = match ibgp_hunt::parse(&text) {
        Ok(s) => s,
        Err(e) => return respond_err(&mut writer, &format!("invalid .ibgp: {e}")),
    };
    let ticket = sched.submit(spec, request);
    match ticket.wait() {
        Ok(answer) => {
            let v = &answer.verdict;
            writeln!(
                writer,
                "ok class={} states={} stop={} complete={} cached={} origin={} stable={}",
                class_keyword(v.class),
                v.states,
                v.stop.token(),
                v.complete,
                answer.cached,
                v.origin.token(),
                v.stable_vectors.len()
            )?;
            for sv in &v.stable_vectors {
                writeln!(writer, "vector {}", vectors_token(std::slice::from_ref(sv)))?;
            }
            writer.write_all(b"end\n")?;
            Ok(())
        }
        Err(e) => respond_err(&mut writer, &e),
    }
}

fn respond_err(writer: &mut TcpStream, msg: &str) -> io::Result<()> {
    // Keep the message on one line so the framing survives.
    let msg = msg.replace('\n', " ");
    writeln!(writer, "err {msg}")?;
    writer.write_all(b"end\n")?;
    Ok(())
}

/// Parse the `classify key=value ...` request header into a [`Request`]
/// (defaults from [`ibgp_hunt::HuntOptions`] for omitted keys).
pub fn parse_header(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    match toks.next() {
        Some("classify") => {}
        Some(other) => return Err(format!("unknown command `{other}`")),
        None => return Err("empty request".into()),
    }
    let mut request = Request::new(ibgp_hunt::HuntOptions::default());
    for tok in toks {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| format!("malformed option `{tok}` (want key=value)"))?;
        match key {
            "max-states" => {
                request.opts.max_states = value
                    .parse()
                    .map_err(|_| format!("invalid max-states `{value}`"))?;
            }
            "max-bytes" => {
                request.opts.max_bytes = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid max-bytes `{value}`"))?,
                );
            }
            "deadline-ms" => {
                request.deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid deadline-ms `{value}`"))?,
                );
            }
            "symmetry" => request.opts.symmetry = value == "1",
            "por" => request.opts.por = value == "1",
            "solver" => request.opts.solver = value.parse()?,
            "loop-prevention" => request.opts.loop_prevention = value == "1",
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(request)
}

/// Client side of the protocol: send one `.ibgp` text to `addr` under
/// `request`, returning the raw response fields.
pub fn submit_text(
    addr: impl ToSocketAddrs,
    text: &str,
    request: &Request,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut header = String::from("classify");
    header.push_str(&format!(" max-states={}", request.opts.max_states));
    if let Some(b) = request.opts.max_bytes {
        header.push_str(&format!(" max-bytes={b}"));
    }
    if let Some(ms) = request.deadline_ms {
        header.push_str(&format!(" deadline-ms={ms}"));
    }
    if request.opts.symmetry {
        header.push_str(" symmetry=1");
    }
    if request.opts.por {
        header.push_str(" por=1");
    }
    if request.opts.solver != ibgp_types::SolverMode::Search {
        header.push_str(&format!(" solver={}", request.opts.solver.token()));
    }
    if request.opts.loop_prevention {
        header.push_str(" loop-prevention=1");
    }
    writeln!(stream, "{header}")?;
    stream.write_all(text.as_bytes())?;
    if !text.ends_with('\n') {
        stream.write_all(b"\n")?;
    }
    stream.write_all(b"end\n")?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status)?;
    let mut body = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end().to_string();
        if line == "end" {
            break;
        }
        body.push(line);
    }
    Ok(Response {
        status: status.trim_end().to_string(),
        body,
    })
}

/// A raw protocol response: the `ok ...`/`err ...` status line plus the
/// body lines before `end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status line.
    pub status: String,
    /// Body lines (stable vectors on success).
    pub body: Vec<String>,
}

impl Response {
    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("ok ")
    }

    /// The value of `key=` in the status line, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.status
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_parse_and_reject() {
        let r = parse_header("classify max-states=77 max-bytes=2048 deadline-ms=500").unwrap();
        assert_eq!(r.opts.max_states, 77);
        assert_eq!(r.opts.max_bytes, Some(2048));
        assert_eq!(r.deadline_ms, Some(500));
        let r = parse_header("classify").unwrap();
        assert_eq!(
            r.opts.max_states,
            ibgp_hunt::HuntOptions::default().max_states
        );
        assert_eq!(r.opts.solver, ibgp_types::SolverMode::Search);
        let r = parse_header("classify solver=sat").unwrap();
        assert_eq!(r.opts.solver, ibgp_types::SolverMode::Sat);
        assert!(parse_header("classify solver=smt").is_err());
        let r = parse_header("classify loop-prevention=1").unwrap();
        assert!(r.opts.loop_prevention);
        let r = parse_header("classify loop-prevention=0").unwrap();
        assert!(!r.opts.loop_prevention);
        assert!(parse_header("classify max-states=x").is_err());
        assert!(parse_header("classify bogus=1").is_err());
        assert!(parse_header("destroy").is_err());
        assert!(parse_header("").is_err());
    }

    #[test]
    fn response_fields_parse() {
        let r = Response {
            status: "ok class=stable states=12 stop=complete complete=true cached=false \
                     origin=search stable=1"
                .into(),
            body: vec!["vector 1,-".into()],
        };
        assert!(r.is_ok());
        assert_eq!(r.field("class"), Some("stable"));
        assert_eq!(r.field("cached"), Some("false"));
        assert_eq!(r.field("origin"), Some("search"));
        assert_eq!(r.field("missing"), None);
    }
}
