//! Batch classification over a directory of `.ibgp` specimens.
//!
//! Walks the directory recursively, submits every specimen through the
//! same scheduler the daemon uses, and renders a deterministic JSON
//! report. The report contains verdict-stable data only — no cache
//! flags, no timings — so a cold run and a warm-cache rerun produce
//! byte-identical files; cache counters are returned separately for the
//! caller to print.

use crate::sched::{Request, Scheduler};
use crate::store::{class_keyword, vectors_token};
use ibgp_hunt::Verdict;
use std::path::{Path, PathBuf};

/// One classified specimen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// Path relative to the batch root, `/`-separated.
    pub file: String,
    /// Canonical structural signature.
    pub signature: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Whether the store answered without a search (not part of the
    /// report — cold and warm runs must render identically).
    pub cached: bool,
}

/// What a batch run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Entries in deterministic (path-sorted) order.
    pub entries: Vec<BatchEntry>,
    /// Searches the scheduler ran for this batch.
    pub searches_run: u64,
    /// Requests answered from the store.
    pub cache_hits: u64,
}

fn collect_specs(root: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|e| e == "ibgp") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(root, &mut files).map_err(|e| format!("cannot read `{}`: {e}", root.display()))?;
    files.sort();
    Ok(files)
}

fn relative_name(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classify every `.ibgp` under `root` through `sched` with the same
/// per-request budget. Specimens are submitted in path order and all
/// pipelined through the worker pool before the first wait.
pub fn run_batch(root: &Path, sched: &Scheduler, request: Request) -> Result<BatchOutcome, String> {
    let files = collect_specs(root)?;
    if files.is_empty() {
        return Err(format!("no .ibgp files under `{}`", root.display()));
    }
    let before_searches = sched.searches_run();
    let before_hits = sched.cache_hits();
    let mut pending = Vec::with_capacity(files.len());
    for path in &files {
        let spec = ibgp_hunt::load_spec(path)
            .map_err(|e| format!("cannot load `{}`: {e}", path.display()))?;
        pending.push((relative_name(root, path), sched.submit(spec, request)));
    }
    let mut entries = Vec::with_capacity(pending.len());
    for (file, ticket) in pending {
        let answer = ticket.wait().map_err(|e| format!("{file}: {e}"))?;
        entries.push(BatchEntry {
            file,
            signature: answer.signature,
            verdict: answer.verdict,
            cached: answer.cached,
        });
    }
    Ok(BatchOutcome {
        entries,
        searches_run: sched.searches_run() - before_searches,
        cache_hits: sched.cache_hits() - before_hits,
    })
}

/// Render the deterministic JSON report: verdict-stable data only, keys
/// and entries in fixed order, two-space indentation, trailing newline.
pub fn report_json(entries: &[BatchEntry]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let v = &e.verdict;
        out.push_str("    {\n");
        out.push_str(&format!("      \"file\": \"{}\",\n", e.file));
        out.push_str(&format!("      \"signature\": \"{}\",\n", e.signature));
        out.push_str(&format!(
            "      \"class\": \"{}\",\n",
            class_keyword(v.class)
        ));
        out.push_str(&format!("      \"states\": {},\n", v.states));
        out.push_str(&format!("      \"complete\": {},\n", v.complete));
        out.push_str(&format!("      \"stop\": \"{}\",\n", v.stop.token()));
        out.push_str(&format!(
            "      \"stable_vectors\": \"{}\"\n",
            vectors_token(&v.stable_vectors)
        ));
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibgp_analysis::OscillationClass;
    use ibgp_types::StopReason;

    #[test]
    fn report_is_deterministic_and_omits_cache_state() {
        let entry = |cached| BatchEntry {
            file: "a/b.ibgp".into(),
            signature: "c:123".into(),
            verdict: Verdict {
                class: OscillationClass::Stable,
                states: 5,
                complete: true,
                stop: StopReason::Complete,
                stable_vectors: vec![vec![Some(ibgp_types::ExitPathId::new(1)), None]],
                metrics: None,
                origin: ibgp_types::VerdictOrigin::Search,
                stable_count: None,
            },
            cached,
        };
        let cold = report_json(&[entry(false)]);
        let warm = report_json(&[entry(true)]);
        assert_eq!(cold, warm, "cache state must not leak into the report");
        assert!(cold.contains("\"file\": \"a/b.ibgp\""));
        assert!(cold.contains("\"stop\": \"complete\""));
        assert!(cold.contains("\"stable_vectors\": \"1,-\""));
        assert!(cold.ends_with("]\n}\n"));
    }
}
