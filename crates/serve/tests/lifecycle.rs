//! Daemon lifecycle: the persisted store survives a restart, deadlines
//! stop deterministically without polluting the cache, and the TCP
//! protocol reports miss-then-hit.

use ibgp_hunt::HuntOptions;
use ibgp_serve::{submit_text, Request, Scheduler, Server, VerdictStore};
use ibgp_types::StopReason;
use std::path::PathBuf;
use std::sync::Arc;

const FIG2: &str = "\
ibgp 1
name fig2
kind reflection
protocol standard
routers 4
link 0 2 10
link 0 3 1
link 1 2 1
link 1 3 10
cluster r 0 c 2
cluster r 1 c 3
exit 1 at 2 as 1 len 1 med 0 pref 100 cost 0
exit 2 at 3 as 1 len 1 med 0 pref 100 cost 0
";

fn spec() -> ibgp_hunt::ScenarioSpec {
    ibgp_hunt::parse(FIG2).expect("test spec parses")
}

fn request(max_states: usize) -> Request {
    Request::new(HuntOptions::new().max_states(max_states))
}

fn temp_log(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ibgp-lifecycle-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("verdicts.log")
}

#[test]
fn restart_reloads_the_store_and_answers_without_searching() {
    let path = temp_log("restart");
    let first = {
        let sched = Scheduler::new(VerdictStore::open(&path).unwrap(), 1);
        let answer = sched
            .submit(spec(), request(10_000))
            .wait()
            .expect("classifies");
        assert!(!answer.cached);
        assert_eq!(sched.searches_run(), 1);
        answer
    };

    // A fresh scheduler over the same log — a daemon restart.
    let sched = Scheduler::new(VerdictStore::open(&path).unwrap(), 1);
    assert_eq!(sched.with_store(|s| s.len()), 1, "restart replays the log");
    let again = sched
        .submit(spec(), request(10_000))
        .wait()
        .expect("classifies");
    assert!(again.cached, "the reloaded store must answer directly");
    assert_eq!(again.verdict.class, first.verdict.class);
    assert_eq!(again.verdict.states, first.verdict.states);
    assert_eq!(again.verdict.stable_vectors, first.verdict.stable_vectors);
    assert_eq!(
        sched.searches_run(),
        0,
        "restart must not repeat the search"
    );
    assert_eq!(sched.cache_hits(), 1);
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn expired_deadline_stops_deterministically_and_is_not_cached() {
    let sched = Scheduler::new(VerdictStore::in_memory(), 1);
    let mut req = request(10_000);
    req.deadline_ms = Some(0);

    let answer = sched.submit(spec(), req).wait().expect("classifies");
    assert_eq!(
        answer.verdict.stop,
        StopReason::Deadline,
        "an already-expired deadline must stop before expansion"
    );
    assert!(!answer.verdict.complete);
    assert_eq!(
        answer.verdict.states, 1,
        "deterministic: only the initial state is visited"
    );
    assert_eq!(
        sched.with_store(|s| s.len()),
        0,
        "deadline verdicts are not stored"
    );

    // The next deadline request searches again — nothing was cached.
    let again = sched.submit(spec(), req).wait().expect("classifies");
    assert!(!again.cached);
    assert_eq!(again.verdict.stop, StopReason::Deadline);
    assert_eq!(sched.searches_run(), 2);
}

#[test]
fn tcp_round_trip_reports_miss_then_hit() {
    let sched = Arc::new(Scheduler::new(VerdictStore::in_memory(), 1));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&sched)).expect("bind");
    let addr = server.local_addr();

    let cold = submit_text(addr, FIG2, &request(10_000)).expect("first round trip");
    assert!(cold.is_ok(), "status: {}", cold.status);
    assert_eq!(cold.field("cached"), Some("false"));
    assert_eq!(cold.field("complete"), Some("true"));

    let warm = submit_text(addr, FIG2, &request(10_000)).expect("second round trip");
    assert!(warm.is_ok(), "status: {}", warm.status);
    assert_eq!(warm.field("cached"), Some("true"));
    assert_eq!(warm.field("class"), cold.field("class"));
    assert_eq!(warm.field("states"), cold.field("states"));
    assert_eq!(warm.field("stop"), cold.field("stop"));
    assert_eq!(
        warm.body, cold.body,
        "stable vectors agree across the cache"
    );

    assert_eq!(sched.searches_run(), 1);
    assert_eq!(sched.cache_hits(), 1);
}
