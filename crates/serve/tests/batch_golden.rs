//! The committed goldens (`corpus/goldens.json`) pin every paper
//! figure's verdict. This test re-classifies the paper figures through
//! the batch pipeline and checks each entry against the goldens
//! field-for-field. (The full-corpus byte-for-byte diff — which includes
//! the deliberately capped 500k-state NPC specimen — runs in CI with the
//! release binary; see the `serve-smoke` job.)

use ibgp_hunt::HuntOptions;
use ibgp_serve::{report_json, run_batch, Request, Scheduler, VerdictStore};
use std::collections::HashMap;
use std::path::Path;

/// Split a `report_json` document into `file -> [field lines]`, with the
/// file line removed and trailing commas normalized.
fn entries(report: &str) -> HashMap<String, Vec<String>> {
    let mut map = HashMap::new();
    let mut file: Option<String> = None;
    let mut fields: Vec<String> = Vec::new();
    for line in report.lines() {
        let trimmed = line.trim();
        if trimmed == "{" || trimmed == "}" || trimmed == "}," {
            match file.take() {
                Some(f) => {
                    map.insert(f, std::mem::take(&mut fields));
                }
                None => fields.clear(),
            }
            continue;
        }
        let field = trimmed.trim_end_matches(',');
        if let Some(rest) = field.strip_prefix("\"file\": \"") {
            file = Some(rest.trim_end_matches('"').to_string());
        } else if field.starts_with('"') {
            fields.push(field.to_string());
        }
    }
    map
}

#[test]
fn paper_figures_match_the_committed_goldens() {
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let goldens_text =
        std::fs::read_to_string(corpus.join("goldens.json")).expect("committed goldens");
    let goldens = entries(&goldens_text);

    let sched = Scheduler::new(VerdictStore::in_memory(), 2);
    // The budget the goldens were generated under (the CLI default).
    let request = Request::new(HuntOptions::new().max_states(500_000));
    let outcome = run_batch(&corpus.join("paper"), &sched, request).expect("batch classifies");
    let produced = entries(&report_json(&outcome.entries));

    assert_eq!(outcome.entries.len(), 7, "every paper figure classified");
    for (file, fields) in &produced {
        let golden = goldens
            .get(&format!("paper/{file}"))
            .unwrap_or_else(|| panic!("`{file}` missing from goldens.json — regenerate it"));
        assert_eq!(
            fields, golden,
            "`{file}` diverged from corpus/goldens.json — \
             if the change is intentional, regenerate with \
             `ibgp-cli batch corpus --out corpus/goldens.json`"
        );
    }
    // Every paper figure closes its state space under the default cap.
    assert!(outcome.entries.iter().all(|e| e.verdict.complete));
}
