//! Signature-cache semantics through the scheduler: isomorphic
//! relabelings share one search, and a small-budget inconclusive verdict
//! never poisons a larger-budget request.

use ibgp_hunt::HuntOptions;
use ibgp_serve::{Request, Scheduler, VerdictStore};

/// The paper's Fig 2 "DISAGREE" shape: two clusters whose reflectors
/// are IGP-closer to the other cluster's border client.
const FIG2: &str = "\
ibgp 1
name fig2
kind reflection
protocol standard
routers 4
link 0 2 10
link 0 3 1
link 1 2 1
link 1 3 10
cluster r 0 c 2
cluster r 1 c 3
exit 1 at 2 as 1 len 1 med 0 pref 100 cost 0
exit 2 at 3 as 1 len 1 med 0 pref 100 cost 0
";

/// The same experiment relabeled: routers permuted by 0<->1, 2<->3,
/// link lines reordered, exit ids shifted, different name.
const FIG2_RELABELED: &str = "\
ibgp 1
name renamed
kind reflection
protocol standard
routers 4
link 0 2 10
link 1 3 10
link 1 2 1
link 0 3 1
cluster r 1 c 3
cluster r 0 c 2
exit 5 at 3 as 1 len 1 med 0 pref 100 cost 0
exit 9 at 2 as 1 len 1 med 0 pref 100 cost 0
";

fn spec(text: &str) -> ibgp_hunt::ScenarioSpec {
    ibgp_hunt::parse(text).expect("test spec parses")
}

fn request(max_states: usize) -> Request {
    Request::new(HuntOptions::new().max_states(max_states))
}

#[test]
fn isomorphic_relabelings_cost_one_search_and_agree() {
    let sched = Scheduler::new(VerdictStore::in_memory(), 1);
    let first = sched
        .submit(spec(FIG2), request(10_000))
        .wait()
        .expect("first request classifies");
    assert!(
        !first.cached,
        "a cold store cannot answer the first request"
    );
    assert!(first.verdict.complete, "fig2's state space fits 10k states");

    let second = sched
        .submit(spec(FIG2_RELABELED), request(10_000))
        .wait()
        .expect("relabeled request classifies");
    assert!(
        second.cached,
        "the relabeled spec must resolve from the store without a search"
    );
    assert_eq!(
        second.signature, first.signature,
        "canonical signatures agree"
    );
    assert_eq!(second.verdict.class, first.verdict.class);
    assert_eq!(second.verdict.states, first.verdict.states);
    assert_eq!(second.verdict.stop, first.verdict.stop);
    assert_eq!(second.verdict.stable_vectors, first.verdict.stable_vectors);

    assert_eq!(sched.searches_run(), 1, "two requests, one search");
    assert_eq!(sched.cache_hits(), 1);
}

#[test]
fn concurrent_isomorphic_requests_still_cost_one_search() {
    // Whether the second request rides the first's in-flight job or hits
    // the store after it lands, the search count must stay at one.
    let sched = Scheduler::new(VerdictStore::in_memory(), 2);
    let t1 = sched.submit(spec(FIG2), request(10_000));
    let t2 = sched.submit(spec(FIG2_RELABELED), request(5_000));
    let a1 = t1.wait().expect("first classifies");
    let a2 = t2.wait().expect("second classifies");
    assert_eq!(a1.verdict.class, a2.verdict.class);
    assert_eq!(a1.signature, a2.signature);
    assert_eq!(
        sched.searches_run(),
        1,
        "isomorphic burst must share one search"
    );
}

#[test]
fn capped_verdict_does_not_poison_larger_budget_requests() {
    let sched = Scheduler::new(VerdictStore::in_memory(), 1);

    // A deliberately starved search: inconclusive, stored under its cap.
    let starved = sched
        .submit(spec(FIG2), request(2))
        .wait()
        .expect("starved request classifies");
    assert!(!starved.verdict.complete, "2 states cannot close fig2");
    assert_eq!(starved.verdict.stop.state_cap(), Some(2));

    // A larger budget must trigger a fresh search, not the stale verdict.
    let full = sched
        .submit(spec(FIG2), request(10_000))
        .wait()
        .expect("full request classifies");
    assert!(
        !full.cached,
        "an inconclusive cap-2 verdict must not answer a cap-10000 request"
    );
    assert!(full.verdict.complete);
    assert_eq!(sched.searches_run(), 2);

    // The complete verdict upgraded the entry: now every budget is served
    // from the store, including one smaller than the original cap.
    let tiny = sched
        .submit(spec(FIG2_RELABELED), request(1))
        .wait()
        .expect("tiny request classifies");
    assert!(tiny.cached, "a complete verdict serves every budget");
    assert_eq!(tiny.verdict.class, full.verdict.class);
    assert!(tiny.verdict.complete);
    assert_eq!(sched.searches_run(), 2, "no third search");
    assert_eq!(sched.cache_hits(), 1);
}

#[test]
fn covered_budget_is_served_but_looser_memory_budget_is_not() {
    let sched = Scheduler::new(VerdictStore::in_memory(), 1);
    let mut bounded = request(2);
    bounded.opts = bounded.opts.max_bytes(1 << 20);
    let first = sched
        .submit(spec(FIG2), bounded)
        .wait()
        .expect("classifies");
    assert!(!first.verdict.complete);

    // Same state cap but a smaller byte budget: covered, served.
    let mut smaller = request(2);
    smaller.opts = smaller.opts.max_bytes(1 << 10);
    let hit = sched
        .submit(spec(FIG2), smaller)
        .wait()
        .expect("classifies");
    assert!(
        hit.cached,
        "pointwise-smaller budget is served the capped verdict"
    );

    // Same state cap but unbounded memory: NOT covered, fresh search.
    let unbounded = request(2);
    let miss = sched
        .submit(spec(FIG2), unbounded)
        .wait()
        .expect("classifies");
    assert!(
        !miss.cached,
        "unbounded-memory request is strictly stronger than the stored budget"
    );
    assert_eq!(sched.searches_run(), 2);
}
