//! Between truth assignments and routing configurations.
//!
//! * [`schedule_for`] — the activation schedule that drives `SR_J` into
//!   the configuration induced by an assignment: clients announce first,
//!   then each variable gadget is tipped into the desired orientation by
//!   activating the *winning* side's reflector before the other, then
//!   the clause nodes run, then a fair round-robin tail.
//! * [`assignment_from_best`] — reading the assignment back out of a
//!   stable best-route vector (`x = true` iff the negative reflector
//!   adopted the positive side's exit).

use crate::reduction::SrInstance;
use crate::sat::Var;
use ibgp_sim::Scripted;
use ibgp_types::{ExitPathId, RouterId};

/// Build a fair activation schedule whose prefix drives the system into
/// the orientation given by `assignment`.
pub fn schedule_for(sr: &SrInstance, assignment: &[bool]) -> Scripted {
    assert_eq!(assignment.len(), sr.formula.num_vars);
    let mut order: Vec<RouterId> = Vec::new();
    // 1. Exit-holding clients announce.
    for v in (0..sr.formula.num_vars as u32).map(Var) {
        order.push(sr.client_pos(v));
        order.push(sr.client_neg(v));
    }
    for j in 0..sr.formula.clauses.len() {
        order.push(sr.clause_ck1(j));
        order.push(sr.clause_ck2(j));
        order.push(sr.clause_cb(j));
    }
    // 2. Tip each variable: the side whose exit should circulate
    //    activates first (it only sees its own client's exit and adopts
    //    it); the other side then sees both and defers to the nearer,
    //    already-circulating one.
    for (i, &value) in assignment.iter().enumerate() {
        let v = Var(i as u32);
        if value {
            order.push(sr.rr_pos(v));
            order.push(sr.rr_neg(v));
        } else {
            order.push(sr.rr_neg(v));
            order.push(sr.rr_pos(v));
        }
    }
    // 3. Clause reflectors last (they see the settled literal routes).
    for j in 0..sr.formula.clauses.len() {
        order.push(sr.clause_b(j));
        order.push(sr.clause_a(j));
    }
    Scripted::new(order.into_iter().map(|r| vec![r]).collect())
}

/// Read the truth assignment out of a best-exit vector (indexed by
/// router). Returns `None` if some variable gadget is not in one of its
/// two legal orientations — which cannot happen in a stable state.
pub fn assignment_from_best(sr: &SrInstance, best: &[Option<ExitPathId>]) -> Option<Vec<bool>> {
    let mut out = Vec::with_capacity(sr.formula.num_vars);
    for v in (0..sr.formula.num_vars as u32).map(Var) {
        let rr_neg_best = best[sr.rr_neg(v).index()]?;
        let rr_pos_best = best[sr.rr_pos(v).index()]?;
        let (p_pos, p_neg) = (sr.exit_pos(v), sr.exit_neg(v));
        if rr_neg_best == p_pos && rr_pos_best == p_pos {
            out.push(true);
        } else if rr_pos_best == p_neg && rr_neg_best == p_neg {
            out.push(false);
        } else {
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::reduce;
    use crate::sat::{Clause, Formula, Lit};
    use ibgp_proto::variants::ProtocolConfig;
    use ibgp_sim::{Engine, SyncEngine};

    fn formula() -> Formula {
        // (x0 ∨ ¬x1)
        Formula::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]).unwrap()
    }

    #[test]
    fn satisfying_assignment_drives_to_a_stable_state() {
        let f = formula();
        let sr = reduce(&f);
        // x0 = true satisfies the clause.
        let assignment = vec![true, false];
        assert!(f.eval(&assignment));
        let mut schedule = schedule_for(&sr, &assignment);
        let mut eng = SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
        let outcome = eng.run(&mut schedule, 50_000);
        assert!(outcome.converged(), "{outcome}");
        let read_back = assignment_from_best(&sr, &eng.best_vector()).unwrap();
        assert_eq!(read_back, assignment);
    }

    #[test]
    fn falsifying_assignment_keeps_the_clause_oscillating() {
        let f = formula();
        let sr = reduce(&f);
        // x0 = false, x1 = true falsifies (x0 ∨ ¬x1): the clause gadget
        // must oscillate, so the run can only end in a cycle.
        let assignment = vec![false, true];
        assert!(!f.eval(&assignment));
        let mut schedule = schedule_for(&sr, &assignment);
        let mut eng = SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
        let outcome = eng.run(&mut schedule, 50_000);
        assert!(outcome.cycled(), "{outcome}");
    }

    #[test]
    fn extraction_rejects_incoherent_states() {
        let f = formula();
        let sr = reduce(&f);
        let n = sr.node_count();
        // All-None vector: no orientation.
        assert!(assignment_from_best(&sr, &vec![None; n]).is_none());
        // Mixed orientation (rr_pos on p_neg, rr_neg on p_pos) is illegal.
        let mut best = vec![None; n];
        best[sr.rr_pos(Var(0)).index()] = Some(sr.exit_neg(Var(0)));
        best[sr.rr_neg(Var(0)).index()] = Some(sr.exit_pos(Var(0)));
        assert!(assignment_from_best(&sr, &best).is_none());
    }
}
