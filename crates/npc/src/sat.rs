//! 3-SAT formulas.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A propositional variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// The variable.
    pub var: Var,
    /// True for the positive literal `x`, false for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: u32) -> Lit {
        Lit {
            var: Var(v),
            positive: true,
        }
    }

    /// The negative literal of `v`.
    pub fn neg(v: u32) -> Lit {
        Lit {
            var: Var(v),
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluate under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var.index()] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A clause of up to three literals (disjunction).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    /// Evaluate under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.eval(assignment))
    }

    /// Distinct variables mentioned.
    pub fn vars(&self) -> Vec<Var> {
        let mut vs: Vec<Var> = self.0.iter().map(|l| l.var).collect();
        vs.sort();
        vs.dedup();
        vs
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A 3-SAT instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Formula {
    /// Number of variables (`x0 … x_{n-1}`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Formula {
    /// Build, validating variable indices and that no clause contains a
    /// variable and its negation (the paper assumes such clauses are
    /// removed — they are trivially satisfied).
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Result<Formula, String> {
        for c in &clauses {
            if c.0.is_empty() || c.0.len() > 3 {
                return Err(format!("clause {c} must have 1..=3 literals"));
            }
            for l in &c.0 {
                if l.var.index() >= num_vars {
                    return Err(format!("literal {l} out of range"));
                }
                if c.0.contains(&l.negated()) {
                    return Err(format!("clause {c} contains a variable and its negation"));
                }
            }
        }
        Ok(Formula { num_vars, clauses })
    }

    /// Evaluate under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// A uniformly random 3-SAT formula (exactly 3 distinct variables per
    /// clause), reproducible per seed. Requires `num_vars >= 3`.
    pub fn random(seed: u64, num_vars: usize, num_clauses: usize) -> Formula {
        assert!(
            num_vars >= 3,
            "need at least 3 variables for 3-literal clauses"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let clauses = (0..num_clauses)
            .map(|_| {
                let mut vars = Vec::new();
                while vars.len() < 3 {
                    let v = rng.gen_range(0..num_vars as u32);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                Clause(
                    vars.into_iter()
                        .map(|v| {
                            if rng.gen_bool(0.5) {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Formula { num_vars, clauses }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_evaluation() {
        let a = [true, false];
        assert!(Lit::pos(0).eval(&a));
        assert!(!Lit::neg(0).eval(&a));
        assert!(Lit::neg(1).eval(&a));
        assert_eq!(Lit::pos(0).negated(), Lit::neg(0));
    }

    #[test]
    fn formula_evaluation() {
        // (x0 ∨ ¬x1) ∧ (x1 ∨ x2)
        let f = Formula::new(
            3,
            vec![
                Clause(vec![Lit::pos(0), Lit::neg(1)]),
                Clause(vec![Lit::pos(1), Lit::pos(2)]),
            ],
        )
        .unwrap();
        assert!(f.eval(&[true, true, false]));
        assert!(!f.eval(&[false, true, false]));
    }

    #[test]
    fn validation_rejects_bad_clauses() {
        assert!(Formula::new(1, vec![Clause(vec![])]).is_err());
        assert!(Formula::new(1, vec![Clause(vec![Lit::pos(5)])]).is_err());
        assert!(Formula::new(1, vec![Clause(vec![Lit::pos(0), Lit::neg(0)])]).is_err());
    }

    #[test]
    fn random_formulas_are_reproducible_and_well_formed() {
        let a = Formula::random(7, 5, 10);
        let b = Formula::random(7, 5, 10);
        assert_eq!(a, b);
        assert_eq!(a.clauses.len(), 10);
        for c in &a.clauses {
            assert_eq!(c.0.len(), 3);
            assert_eq!(c.vars().len(), 3, "distinct variables per clause");
        }
    }

    #[test]
    fn display_renders_readably() {
        let f = Formula::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]).unwrap();
        assert_eq!(f.to_string(), "(x0 ∨ ¬x1)");
    }
}
