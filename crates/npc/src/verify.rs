//! Mechanical verification of the reduction:
//! `J satisfiable ⟺ SR_J can stabilize`.
//!
//! * **Soundness** (`sat ⇒ stable`): DPLL produces an assignment; the
//!   induced activation schedule drives `SR_J` into a configuration that
//!   the engine verifies to be a fixed point, and the assignment reads
//!   back out of it.
//! * **Completeness** (`unsat ⇒ no stable state`): every orientation of
//!   the variable gadgets leaves some clause unsatisfied, and the
//!   schedule driven by *any* assignment ends in a provable cycle. On
//!   the smallest instances this is additionally confirmed by exhaustive
//!   reachability search (`ibgp-analysis::explore`).

use crate::dpll;
use crate::extract::{assignment_from_best, schedule_for};
use crate::reduction::{reduce, SrInstance};
use crate::sat::Formula;
use ibgp_proto::variants::ProtocolConfig;
use ibgp_sim::{Engine, SyncEngine};
use serde::{Deserialize, Serialize};

/// The verdicts of one equivalence check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// DPLL's verdict on `J`.
    pub satisfiable: bool,
    /// Whether the routing side agrees (witness found / all orientations
    /// cycle).
    pub agrees: bool,
    /// For satisfiable formulas: whether the assignment read back from
    /// the stable routing state satisfies `J`.
    pub round_trip: Option<bool>,
    /// Orientation schedules tried on the routing side.
    pub schedules_tried: usize,
}

impl EquivalenceReport {
    /// Overall success.
    pub fn ok(&self) -> bool {
        self.agrees && self.round_trip.unwrap_or(true)
    }
}

/// Check the equivalence on one formula.
///
/// For satisfiable `J`, drives `SR_J` with the satisfying assignment's
/// schedule and demands convergence plus a correct read-back. For
/// unsatisfiable `J`, drives `SR_J` with **every** assignment's schedule
/// (`2^n` of them) and demands a provable cycle each time.
pub fn check_equivalence(formula: &Formula, max_steps: u64) -> EquivalenceReport {
    let sr = reduce(formula);
    match dpll::solve(formula) {
        Some(assignment) => {
            let (converged, round_trip) = drive(&sr, &assignment, max_steps);
            EquivalenceReport {
                satisfiable: true,
                agrees: converged,
                round_trip: Some(round_trip),
                schedules_tried: 1,
            }
        }
        None => {
            let n = formula.num_vars;
            let mut tried = 0;
            let mut all_cycled = true;
            for bits in 0..(1u64 << n) {
                let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                tried += 1;
                let mut schedule = schedule_for(&sr, &assignment);
                let mut eng =
                    SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
                let outcome = eng.run(&mut schedule, max_steps);
                if !outcome.cycled() {
                    all_cycled = false;
                    break;
                }
            }
            EquivalenceReport {
                satisfiable: false,
                agrees: all_cycled,
                round_trip: None,
                schedules_tried: tried,
            }
        }
    }
}

/// Drive `SR_J` toward `assignment`; return (converged-to-fixed-point,
/// read-back-satisfies).
fn drive(sr: &SrInstance, assignment: &[bool], max_steps: u64) -> (bool, bool) {
    let mut schedule = schedule_for(sr, assignment);
    let mut eng = SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
    let outcome = eng.run(&mut schedule, max_steps);
    if !outcome.converged() {
        return (false, false);
    }
    match assignment_from_best(sr, &eng.best_vector()) {
        Some(a) => {
            let ok = sr.formula.eval(&a);
            (true, ok)
        }
        None => (true, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Clause, Lit};

    fn f(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Formula {
        Formula::new(num_vars, clauses.into_iter().map(Clause).collect()).unwrap()
    }

    #[test]
    fn satisfiable_single_clause() {
        let formula = f(3, vec![vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]]);
        let report = check_equivalence(&formula, 100_000);
        assert!(report.satisfiable);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn unsat_pair_of_units() {
        // (x0) ∧ (¬x0): no stable configuration may exist.
        let formula = f(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        let report = check_equivalence(&formula, 100_000);
        assert!(!report.satisfiable);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.schedules_tried, 2);
    }

    #[test]
    fn unsat_complete_two_var_enumeration() {
        let formula = f(
            2,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        let report = check_equivalence(&formula, 200_000);
        assert!(!report.satisfiable);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.schedules_tried, 4);
    }

    #[test]
    fn random_corpus_agrees_with_dpll() {
        for seed in 0..6 {
            let formula = Formula::random(seed, 3, 4);
            let report = check_equivalence(&formula, 200_000);
            assert!(report.ok(), "seed {seed}: {report:?} for {formula}");
        }
    }
}
