//! A complete DPLL SAT solver — the ground truth the reduction is
//! verified against.
//!
//! Historically this was a self-contained recursive DPLL with a stack
//! depth proportional to the variable count. The engine has since been
//! promoted to `ibgp-solver` and generalized: iterative explicit-trail
//! search, two-watched-literal unit propagation, all-solutions
//! enumeration (which the stability encoder needs and this crate does
//! not). This module keeps the crate-local 3-SAT vocabulary and
//! delegates the solving.

use crate::sat::Formula;
use ibgp_solver::cnf::{Cnf, Lit as CnfLit, Var};

/// Decide satisfiability; return a satisfying assignment if one exists.
/// Unconstrained variables default to `false`.
pub fn solve(formula: &Formula) -> Option<Vec<bool>> {
    let mut cnf = Cnf::with_vars(formula.num_vars as u32);
    for clause in &formula.clauses {
        cnf.add(
            clause
                .0
                .iter()
                .map(|l| {
                    let v = Var(l.var.index() as u32);
                    if l.positive {
                        CnfLit::pos(v)
                    } else {
                        CnfLit::neg(v)
                    }
                })
                .collect(),
        );
    }
    ibgp_solver::solve_one(&cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Clause, Formula, Lit};

    fn f(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Formula {
        Formula::new(num_vars, clauses.into_iter().map(Clause).collect()).unwrap()
    }

    #[test]
    fn trivially_satisfiable() {
        let formula = f(1, vec![vec![Lit::pos(0)]]);
        let a = solve(&formula).unwrap();
        assert!(formula.eval(&a));
    }

    #[test]
    fn simple_unsat() {
        let formula = f(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(solve(&formula).is_none());
    }

    #[test]
    fn classic_unsat_over_two_vars() {
        // (x0∨x1)(x0∨¬x1)(¬x0∨x1)(¬x0∨¬x1) is unsatisfiable.
        let formula = f(
            2,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        assert!(solve(&formula).is_none());
    }

    #[test]
    fn satisfying_assignments_actually_satisfy() {
        for seed in 0..50 {
            let formula = Formula::random(seed, 6, 12);
            if let Some(a) = solve(&formula) {
                assert!(formula.eval(&a), "seed {seed}: bogus assignment");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..60 {
            let formula = Formula::random(seed, 4, 9);
            let brute = (0..(1u32 << 4)).any(|bits| {
                let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                formula.eval(&a)
            });
            assert_eq!(solve(&formula).is_some(), brute, "seed {seed}: {formula}");
        }
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let formula = f(2, vec![]);
        let a = solve(&formula).unwrap();
        assert_eq!(a.len(), 2);
    }
}
