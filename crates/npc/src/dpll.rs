//! A complete DPLL SAT solver — the ground truth the reduction is
//! verified against.
//!
//! Plain DPLL with unit propagation and pure-literal elimination;
//! entirely adequate for the instance sizes the reduction's state-space
//! verification can handle (tens of variables).

use crate::sat::{Formula, Lit};

/// Decide satisfiability; return a satisfying assignment if one exists.
pub fn solve(formula: &Formula) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; formula.num_vars];
    let clauses: Vec<Vec<Lit>> = formula.clauses.iter().map(|c| c.0.clone()).collect();
    if dpll(&clauses, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Clause status under a partial assignment.
enum Status {
    Satisfied,
    /// The clause's remaining unassigned literals.
    Open(Vec<Lit>),
    Conflict,
}

fn clause_status(clause: &[Lit], assignment: &[Option<bool>]) -> Status {
    let mut open = Vec::new();
    for &l in clause {
        match assignment[l.var.index()] {
            Some(v) if v == l.positive => return Status::Satisfied,
            Some(_) => {}
            None => open.push(l),
        }
    }
    if open.is_empty() {
        Status::Conflict
    } else {
        Status::Open(open)
    }
}

fn dpll(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        let mut all_satisfied = true;
        for c in clauses {
            match clause_status(c, assignment) {
                Status::Satisfied => {}
                Status::Conflict => {
                    undo(assignment, &trail);
                    return false;
                }
                Status::Open(open) => {
                    all_satisfied = false;
                    if open.len() == 1 {
                        unit = Some(open[0]);
                        break;
                    }
                }
            }
        }
        if all_satisfied {
            return true;
        }
        match unit {
            Some(l) => {
                assignment[l.var.index()] = Some(l.positive);
                trail.push(l.var.index());
            }
            None => break,
        }
    }

    // Pure-literal elimination.
    let mut seen_pos = vec![false; assignment.len()];
    let mut seen_neg = vec![false; assignment.len()];
    for c in clauses {
        if let Status::Open(open) = clause_status(c, assignment) {
            for l in open {
                if l.positive {
                    seen_pos[l.var.index()] = true;
                } else {
                    seen_neg[l.var.index()] = true;
                }
            }
        }
    }
    for v in 0..assignment.len() {
        if assignment[v].is_none() && (seen_pos[v] ^ seen_neg[v]) {
            assignment[v] = Some(seen_pos[v]);
            trail.push(v);
        }
    }

    // Branch on the first unassigned variable of an open clause.
    let branch_var = clauses
        .iter()
        .find_map(|c| match clause_status(c, assignment) {
            Status::Open(open) => Some(open[0].var.index()),
            _ => None,
        });
    let Some(v) = branch_var else {
        // No open clauses left: satisfied.
        return true;
    };
    for value in [true, false] {
        assignment[v] = Some(value);
        if dpll(clauses, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    undo(assignment, &trail);
    false
}

fn undo(assignment: &mut [Option<bool>], trail: &[usize]) {
    for &v in trail {
        assignment[v] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{Clause, Formula};

    fn f(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Formula {
        Formula::new(num_vars, clauses.into_iter().map(Clause).collect()).unwrap()
    }

    #[test]
    fn trivially_satisfiable() {
        let formula = f(1, vec![vec![Lit::pos(0)]]);
        let a = solve(&formula).unwrap();
        assert!(formula.eval(&a));
    }

    #[test]
    fn simple_unsat() {
        let formula = f(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(solve(&formula).is_none());
    }

    #[test]
    fn classic_unsat_over_two_vars() {
        // (x0∨x1)(x0∨¬x1)(¬x0∨x1)(¬x0∨¬x1) is unsatisfiable.
        let formula = f(
            2,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::pos(0), Lit::neg(1)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        assert!(solve(&formula).is_none());
    }

    #[test]
    fn satisfying_assignments_actually_satisfy() {
        for seed in 0..50 {
            let formula = Formula::random(seed, 6, 12);
            if let Some(a) = solve(&formula) {
                assert!(formula.eval(&a), "seed {seed}: bogus assignment");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..60 {
            let formula = Formula::random(seed, 4, 9);
            let brute = (0..(1u32 << 4)).any(|bits| {
                let a: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                formula.eval(&a)
            });
            assert_eq!(solve(&formula).is_some(), brute, "seed {seed}: {formula}");
        }
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let formula = f(2, vec![]);
        let a = solve(&formula).unwrap();
        assert_eq!(a.len(), 2);
    }
}
