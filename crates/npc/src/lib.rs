//! # ibgp-npc
//!
//! The §5 result of the paper: deciding whether an I-BGP-with-route-
//! reflection configuration *can* stabilize is NP-complete, by reduction
//! from 3-SAT. This crate implements the reduction constructively:
//!
//! * [`sat`] — 3-SAT formulas, random generation, assignment evaluation;
//! * [`dpll`] — a complete DPLL solver (unit propagation + pure literals)
//!   providing ground truth for the equivalence tests;
//! * [`reduction`] — `J ↦ SR_J`: variable gadgets (bistable DISAGREE
//!   pairs, Fig 7/8-style: exactly two stable orientations = truth
//!   values) and clause gadgets (Fig 1(a)-style MED oscillators with no
//!   stable state in isolation, Fig 9-style), wired so that a clause
//!   oscillator is *pacified* exactly when one of its literals' exit
//!   paths circulates — i.e. when the clause is satisfied;
//! * [`extract`] — reading a truth assignment back out of a stable
//!   routing configuration, and building the activation schedule that
//!   drives the system into the configuration induced by an assignment;
//! * [`verify`] — the mechanical equivalence check
//!   `J satisfiable ⟺ SR_J can stabilize`, exercised against DPLL over
//!   formula corpora in the tests and benches.
//!
//! The paper's Figures 7–9 are not fully recoverable from the source
//! text, so the gadget internals here are a documented reconstruction
//! (see DESIGN.md); the *defining properties* — gadget bistability,
//! clause instability in isolation, pacification by satisfied literals,
//! and the global sat ⟺ stable equivalence — are all verified
//! mechanically by this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dpll;
pub mod extract;
pub mod reduction;
pub mod sat;
pub mod verify;

pub use dpll::solve;
pub use extract::{assignment_from_best, schedule_for};
pub use reduction::{reduce, SrInstance};
pub use sat::{Clause, Formula, Lit, Var};
pub use verify::{check_equivalence, EquivalenceReport};
