//! The reduction `J ↦ SR_J` (§5, Figs 7–9 reconstructed).
//!
//! ## Variable gadget (bistable, Fig 7/8 role)
//!
//! For each variable `x` two single-client clusters, cross-wired:
//!
//! ```text
//!   RR⁺ ──3── c⁺ (exit p⁺)        RR⁺ ──1── c⁻
//!   RR⁻ ──3── c⁻ (exit p⁻)        RR⁻ ──1── c⁺
//! ```
//!
//! Both exits go through the variable's own neighbor AS with MED 0, so
//! selection between them is purely IGP-metric: each reflector prefers
//! the *other* side's exit (distance 1 < 3). Exactly two stable
//! orientations exist: either `p⁺` circulates in the reflector mesh
//! (`x = true`: RR⁺ adopts and re-advertises its client's `p⁺`, RR⁻
//! adopts `p⁺` and goes silent) or symmetrically `p⁻` circulates
//! (`x = false`).
//!
//! ## Clause gadget (no stable state in isolation, Fig 9 role)
//!
//! For each clause a copy of the paper's Fig 1(a) oscillator:
//! reflector `A` with clients `ck1` (route `r1`, own AS, MED 0, distance
//! 4) and `ck2` (route `r2`, clause AS, MED 10, distance 3); reflector
//! `B` (distance 4 from `A`) with client `cb` (route `r3`, clause AS,
//! MED 5, distance 9). The MED-hiding cycle of Fig 1(a) runs forever —
//! unless a route *closer to `A` than all of `r1`–`r3`* is permanently
//! visible, which freezes `A` and stabilizes the gadget.
//!
//! ## Wiring (literal edges)
//!
//! For every literal `l` of clause `K`, a physical edge `A_K — c_l` of
//! cost 2. A *true* literal's exit circulates in the reflector mesh and
//! sits at distance 2 < 3 from `A_K`: the oscillator is pacified. A
//! *false* literal's exit reaches `A_K` only at distance ≥ 6 (through
//! the variable gadget's interior) and at distance ≥ 10 from `B_K`, so
//! it never interferes. A backbone hub (cost-50 edges to every
//! reflector) keeps unrelated gadgets far apart and the graph connected.
//!
//! Hence `SR_J` has a stable configuration **iff** every clause has a
//! true literal under some orientation of the variable gadgets — iff `J`
//! is satisfiable. All exits share LOCAL-PREF and AS-PATH length, so
//! only MED, metric, and tie-breaks ever act, as in the paper's
//! construction.

use crate::sat::{Formula, Lit, Var};
use ibgp_topology::{Topology, TopologyBuilder};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, Med, RouterId};
use std::sync::Arc;

/// Cost of the backbone-hub edges.
const HUB_COST: u64 = 50;

/// The reduced instance with its node/exit maps.
#[derive(Debug, Clone)]
pub struct SrInstance {
    /// The reduced topology.
    pub topology: Topology,
    /// All injected exit paths.
    pub exits: Vec<ExitPathRef>,
    /// The source formula.
    pub formula: Formula,
}

impl SrInstance {
    /// The backbone hub node.
    pub fn hub(&self) -> RouterId {
        RouterId::new(0)
    }

    fn var_base(&self, v: Var) -> u32 {
        1 + 4 * v.0
    }

    /// Reflector of the positive side of a variable gadget.
    pub fn rr_pos(&self, v: Var) -> RouterId {
        RouterId::new(self.var_base(v))
    }

    /// Reflector of the negative side.
    pub fn rr_neg(&self, v: Var) -> RouterId {
        RouterId::new(self.var_base(v) + 1)
    }

    /// Client holding the positive exit `p⁺`.
    pub fn client_pos(&self, v: Var) -> RouterId {
        RouterId::new(self.var_base(v) + 2)
    }

    /// Client holding the negative exit `p⁻`.
    pub fn client_neg(&self, v: Var) -> RouterId {
        RouterId::new(self.var_base(v) + 3)
    }

    /// The client holding a literal's exit.
    pub fn literal_client(&self, l: Lit) -> RouterId {
        if l.positive {
            self.client_pos(l.var)
        } else {
            self.client_neg(l.var)
        }
    }

    fn clause_base(&self, j: usize) -> u32 {
        1 + 4 * self.formula.num_vars as u32 + 5 * j as u32
    }

    /// Clause reflector `A` (the oscillator's MED-comparing node).
    pub fn clause_a(&self, j: usize) -> RouterId {
        RouterId::new(self.clause_base(j))
    }

    /// Clause reflector `B`.
    pub fn clause_b(&self, j: usize) -> RouterId {
        RouterId::new(self.clause_base(j) + 1)
    }

    /// `A`'s client holding `r1`.
    pub fn clause_ck1(&self, j: usize) -> RouterId {
        RouterId::new(self.clause_base(j) + 2)
    }

    /// `A`'s client holding `r2`.
    pub fn clause_ck2(&self, j: usize) -> RouterId {
        RouterId::new(self.clause_base(j) + 3)
    }

    /// `B`'s client holding `r3`.
    pub fn clause_cb(&self, j: usize) -> RouterId {
        RouterId::new(self.clause_base(j) + 4)
    }

    /// Total router count.
    pub fn node_count(&self) -> usize {
        1 + 4 * self.formula.num_vars + 5 * self.formula.clauses.len()
    }

    /// Exit id of the positive literal's path `p⁺`.
    pub fn exit_pos(&self, v: Var) -> ExitPathId {
        ExitPathId::new(1 + 2 * v.0)
    }

    /// Exit id of the negative literal's path `p⁻`.
    pub fn exit_neg(&self, v: Var) -> ExitPathId {
        ExitPathId::new(2 + 2 * v.0)
    }

    /// Exit id of a literal's path.
    pub fn exit_of(&self, l: Lit) -> ExitPathId {
        if l.positive {
            self.exit_pos(l.var)
        } else {
            self.exit_neg(l.var)
        }
    }

    /// Exit ids `(r1, r2, r3)` of a clause gadget.
    pub fn clause_exits(&self, j: usize) -> (ExitPathId, ExitPathId, ExitPathId) {
        let base = 2 * self.formula.num_vars as u32 + 3 * j as u32;
        (
            ExitPathId::new(base + 1),
            ExitPathId::new(base + 2),
            ExitPathId::new(base + 3),
        )
    }
}

/// Build `SR_J` from a 3-SAT formula. Polynomial: `4n + 5m + 1` routers,
/// `2n + 3m` exit paths.
///
/// ```
/// use ibgp_npc::{reduce, Clause, Formula, Lit};
///
/// let j = Formula::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])])?;
/// let sr = reduce(&j);
/// assert_eq!(sr.node_count(), 1 + 4 * 2 + 5 * 1);
/// assert_eq!(sr.exits.len(), 2 * 2 + 3 * 1);
/// # Ok::<(), String>(())
/// ```
pub fn reduce(formula: &Formula) -> SrInstance {
    let nv = formula.num_vars;
    let nc = formula.clauses.len();
    let n = 1 + 4 * nv + 5 * nc;

    // Temporary instance for the index helpers.
    let skeleton = SrInstance {
        topology: TopologyBuilder::new(1).cluster([0], []).build().unwrap(),
        exits: Vec::new(),
        formula: formula.clone(),
    };

    let mut b = TopologyBuilder::new(n);

    // Hub cluster.
    b = b.cluster([0], []);

    // Variable gadgets.
    for v in (0..nv as u32).map(Var) {
        let (rp, rn) = (skeleton.rr_pos(v).raw(), skeleton.rr_neg(v).raw());
        let (cp, cn) = (skeleton.client_pos(v).raw(), skeleton.client_neg(v).raw());
        b = b
            .cluster([rp], [cp])
            .cluster([rn], [cn])
            .link(rp, cp, 3)
            .link(rn, cn, 3)
            .link(rp, cn, 1)
            .link(rn, cp, 1)
            .link(0, rp, HUB_COST)
            .link(0, rn, HUB_COST);
    }

    // Clause gadgets.
    for j in 0..nc {
        let a = skeleton.clause_a(j).raw();
        let bb = skeleton.clause_b(j).raw();
        let (ck1, ck2, cb) = (
            skeleton.clause_ck1(j).raw(),
            skeleton.clause_ck2(j).raw(),
            skeleton.clause_cb(j).raw(),
        );
        b = b
            .cluster([a], [ck1, ck2])
            .cluster([bb], [cb])
            .link(a, ck1, 4)
            .link(a, ck2, 3)
            .link(a, bb, 4)
            .link(bb, cb, 9)
            .link(0, a, HUB_COST)
            .link(0, bb, HUB_COST);
        // Literal edges: A_K — c_l, cost 2.
        for l in &formula.clauses[j].0 {
            b = b.link(a, skeleton.literal_client(*l).raw(), 2);
        }
    }

    let topology = b.build().expect("reduction produces a valid topology");

    // Exit paths. Neighbor ASes: one per variable, two per clause.
    let as_var = |v: Var| AsId::new(1 + v.0);
    let as_clause1 = |j: usize| AsId::new(1 + nv as u32 + 2 * j as u32);
    let as_clause2 = |j: usize| AsId::new(1 + nv as u32 + 2 * j as u32 + 1);

    let mut exits: Vec<ExitPathRef> = Vec::new();
    let mk = |id: ExitPathId, at: RouterId, nas: AsId, med: u32| -> ExitPathRef {
        Arc::new(
            ExitPath::builder(id)
                .via(nas)
                .med(Med::new(med))
                .exit_point(at)
                .build_unchecked(),
        )
    };
    for v in (0..nv as u32).map(Var) {
        exits.push(mk(
            skeleton.exit_pos(v),
            skeleton.client_pos(v),
            as_var(v),
            0,
        ));
        exits.push(mk(
            skeleton.exit_neg(v),
            skeleton.client_neg(v),
            as_var(v),
            0,
        ));
    }
    for j in 0..nc {
        let (r1, r2, r3) = skeleton.clause_exits(j);
        exits.push(mk(r1, skeleton.clause_ck1(j), as_clause1(j), 0));
        exits.push(mk(r2, skeleton.clause_ck2(j), as_clause2(j), 10));
        exits.push(mk(r3, skeleton.clause_cb(j), as_clause2(j), 5));
    }

    SrInstance {
        topology,
        exits,
        formula: formula.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::Clause;
    use ibgp_types::IgpCost;

    fn formula_xy() -> Formula {
        // (x0 ∨ ¬x1)
        Formula::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]).unwrap()
    }

    #[test]
    fn sizes_are_polynomial() {
        let f = formula_xy();
        let sr = reduce(&f);
        assert_eq!(sr.node_count(), 1 + 8 + 5);
        assert_eq!(sr.topology.len(), sr.node_count());
        assert_eq!(sr.exits.len(), 2 * 2 + 3);
    }

    #[test]
    fn distances_implement_the_gadget_geometry() {
        let f = formula_xy();
        let sr = reduce(&f);
        let d = |u, v| sr.topology.igp_cost(u, v);
        let v0 = Var(0);
        let v1 = Var(1);
        // Variable gadget: cross exits nearer than own.
        assert_eq!(d(sr.rr_pos(v0), sr.client_neg(v0)), IgpCost::new(1));
        assert_eq!(d(sr.rr_pos(v0), sr.client_pos(v0)), IgpCost::new(3));
        // Clause A: literal exits at distance 2 (x0 positive, x1 negative).
        let a = sr.clause_a(0);
        assert_eq!(d(a, sr.client_pos(v0)), IgpCost::new(2));
        assert_eq!(d(a, sr.client_neg(v1)), IgpCost::new(2));
        // The *false* sides are at distance ≥ 6 from A.
        assert!(d(a, sr.client_neg(v0)) >= IgpCost::new(6));
        assert!(d(a, sr.client_pos(v1)) >= IgpCost::new(6));
        // Oscillator geometry.
        assert_eq!(d(a, sr.clause_ck2(0)), IgpCost::new(3));
        assert_eq!(d(a, sr.clause_ck1(0)), IgpCost::new(4));
        assert_eq!(d(a, sr.clause_cb(0)), IgpCost::new(13));
        let b = sr.clause_b(0);
        assert_eq!(d(b, sr.clause_ck1(0)), IgpCost::new(8));
        assert_eq!(d(b, sr.clause_cb(0)), IgpCost::new(9));
        // False-literal exits are farther from B than r3.
        assert!(d(b, sr.client_neg(v0)) >= IgpCost::new(10));
    }

    #[test]
    fn clusters_and_sessions_are_wired_per_design() {
        let f = formula_xy();
        let sr = reduce(&f);
        let ibgp = sr.topology.ibgp();
        let v0 = Var(0);
        assert!(ibgp.is_reflector(sr.rr_pos(v0)));
        assert!(ibgp.is_client(sr.client_pos(v0)));
        // The cross physical edge carries NO session (different clusters).
        assert!(!ibgp.is_session(sr.rr_pos(v0), sr.client_neg(v0)));
        assert!(ibgp.is_session(sr.rr_pos(v0), sr.client_pos(v0)));
        // Reflector mesh spans gadgets.
        assert!(ibgp.is_session(sr.rr_pos(v0), sr.clause_a(0)));
        // Literal edges carry no session either (client of another cluster).
        assert!(!ibgp.is_session(sr.clause_a(0), sr.client_pos(v0)));
    }

    #[test]
    fn exit_attributes_follow_the_construction() {
        let f = formula_xy();
        let sr = reduce(&f);
        let by_id = |id: ExitPathId| sr.exits.iter().find(|p| p.id() == id).unwrap().clone();
        let (r1, r2, r3) = sr.clause_exits(0);
        assert_eq!(by_id(r1).med(), Med::new(0));
        assert_eq!(by_id(r2).med(), Med::new(10));
        assert_eq!(by_id(r3).med(), Med::new(5));
        // r2 and r3 share the clause AS; r1 has its own.
        assert_eq!(by_id(r2).next_as(), by_id(r3).next_as());
        assert_ne!(by_id(r1).next_as(), by_id(r2).next_as());
        // Variable exits share their variable's AS, MED 0.
        let p = by_id(sr.exit_pos(Var(0)));
        let q = by_id(sr.exit_neg(Var(0)));
        assert_eq!(p.next_as(), q.next_as());
        assert_eq!(p.med(), Med::new(0));
        // All LOCAL-PREFs and AS-path lengths equal.
        for e in &sr.exits {
            assert_eq!(e.local_pref(), ibgp_types::LocalPref::DEFAULT);
            assert_eq!(e.as_path_length(), 1);
        }
    }
}
