//! Golden re-classification under symmetry reduction.
//!
//! Every committed `.ibgp` specimen — the paper figures under
//! `corpus/paper/` and the seeded specimens under `corpus/specimens/` —
//! must classify to *exactly* the same verdict with orbit pruning on as
//! off: class, completeness, cap/memory status, and the byte-identical
//! stable-vector list. The paper figures additionally pin their known
//! classes, so a symmetry bug cannot hide behind a matching-but-wrong
//! pair of verdicts.
//!
//! Negative controls ride along: the hash-compaction mode must finish
//! every paper figure with zero observable digest collisions (64-bit
//! digests over searches this size), reporting the identical class.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::{classify_spec, parse, HuntOptions};
use std::path::PathBuf;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../corpus/{sub}"))
}

fn corpus_specs(sub: &str) -> Vec<(String, ibgp_hunt::ScenarioSpec)> {
    let dir = corpus_dir(sub);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .ibgp files under {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("unreadable {}: {e}", p.display()));
            let spec = parse(&text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, spec)
        })
        .collect()
}

fn opts(symmetry: bool) -> HuntOptions {
    HuntOptions {
        symmetry,
        ..HuntOptions::default()
    }
}

const PAPER_EXPECTED: [(&str, OscillationClass); 7] = [
    ("fig1a", OscillationClass::Persistent),
    ("fig1b", OscillationClass::Stable),
    ("fig2", OscillationClass::Transient),
    ("fig3", OscillationClass::Stable),
    ("fig12", OscillationClass::Stable),
    ("fig13", OscillationClass::Persistent),
    ("fig14", OscillationClass::Stable),
];

#[test]
fn every_committed_specimen_classifies_identically_under_symmetry() {
    for sub in ["paper", "specimens"] {
        for (name, spec) in corpus_specs(sub) {
            let plain = classify_spec(&spec, &opts(false))
                .unwrap_or_else(|e| panic!("{name}: plain classify failed: {e}"));
            let sym = classify_spec(&spec, &opts(true))
                .unwrap_or_else(|e| panic!("{name}: symmetric classify failed: {e}"));
            assert_eq!(sym.class, plain.class, "{name}: class drifted");
            assert_eq!(sym.complete, plain.complete, "{name}: completeness drifted");
            assert_eq!(
                sym.stop.state_cap(),
                plain.stop.state_cap(),
                "{name}: cap status drifted"
            );
            assert_eq!(
                sym.stop.memory_budget(),
                plain.stop.memory_budget(),
                "{name}: memory status drifted"
            );
            assert_eq!(
                sym.stable_vectors, plain.stable_vectors,
                "{name}: stable vectors drifted"
            );
            assert!(sym.states <= plain.states, "{name}: pruning added states");
            if let (Some(ms), Some(mp)) = (&sym.metrics, &plain.metrics) {
                assert_eq!(
                    ms.orbit_states, mp.states_visited,
                    "{name}: representatives must stand for the plain state set"
                );
            }
        }
    }
}

#[test]
fn paper_figures_keep_their_known_classes_under_symmetry() {
    let dir_names: Vec<String> = corpus_specs("paper")
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let mut expected: Vec<&str> = PAPER_EXPECTED.iter().map(|(n, _)| *n).collect();
    expected.sort_unstable();
    assert_eq!(dir_names, expected, "PAPER_EXPECTED table out of date");
    for (name, spec) in corpus_specs("paper") {
        let want = PAPER_EXPECTED.iter().find(|(n, _)| *n == name).unwrap().1;
        let sym = classify_spec(&spec, &opts(true)).unwrap();
        assert_eq!(sym.class, want, "{name} under symmetry");
        assert!(sym.complete, "{name}: symmetric search must complete");
    }
}

#[test]
fn paper_figures_have_no_digest_collisions_under_compaction() {
    // A budget far below any figure's exact-key footprint forces digest
    // compaction, yet is roomy enough (in 16-byte digest entries) for
    // every figure's full search to finish.
    let bounded = HuntOptions {
        max_bytes: Some(64 * 1024),
        ..HuntOptions::default()
    };
    for (name, spec) in corpus_specs("paper") {
        let plain = classify_spec(&spec, &HuntOptions::default()).unwrap();
        let v = classify_spec(&spec, &bounded).unwrap();
        assert_eq!(v.class, plain.class, "{name}: compaction changed the class");
        assert_eq!(
            v.stop.memory_budget(),
            None,
            "{name}: budget should suffice"
        );
        let m = v
            .metrics
            .unwrap_or_else(|| panic!("{name}: instrumented path expected"));
        assert_eq!(
            m.digest_collisions, 0,
            "{name}: observable digest collision"
        );
    }
}
