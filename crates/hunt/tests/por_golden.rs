//! Golden re-classification under partial-order reduction.
//!
//! Every committed `.ibgp` specimen — paper figures and seeded
//! specimens — must classify to an equivalent verdict with `--por` on as
//! off, at `--jobs` 1 and 8, with `--symmetry` off and on:
//!
//! * when the unpruned search completes, the pruned one must report the
//!   identical class and byte-identical stable-vector list, complete,
//!   and never visit more states;
//! * when the unpruned search caps out (the `npc-1var` §5 gadget), the
//!   pruned search may legitimately *resolve* it — pruning only removes
//!   redundant interleavings, so it can complete strictly more searches
//!   under the same cap — but an incomplete pruned search must still be
//!   Unknown.
//!
//! POR's ample-set choice is a pure function of each state, so pruned
//! verdicts must additionally be bit-identical across worker counts.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::{classify_spec, parse, HuntOptions, Verdict};
use std::path::PathBuf;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../corpus/{sub}"))
}

fn corpus_specs(sub: &str) -> Vec<(String, ibgp_hunt::ScenarioSpec)> {
    let dir = corpus_dir(sub);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .ibgp files under {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("unreadable {}: {e}", p.display()));
            let spec = parse(&text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, spec)
        })
        .collect()
}

fn opts(por: bool, symmetry: bool, jobs: usize) -> HuntOptions {
    HuntOptions {
        por,
        symmetry,
        jobs,
        ..HuntOptions::default()
    }
}

/// The exactness contract between an unpruned and a pruned verdict.
fn assert_equivalent(name: &str, tag: &str, off: &Verdict, on: &Verdict) {
    if off.complete {
        assert_eq!(on.class, off.class, "{name} [{tag}]: class drifted");
        assert_eq!(
            on.stable_vectors, off.stable_vectors,
            "{name} [{tag}]: stable vectors drifted"
        );
        assert!(on.complete, "{name} [{tag}]: POR lost completeness");
        assert_eq!(on.stop.state_cap(), None, "{name} [{tag}]");
        assert_eq!(on.stop.memory_budget(), None, "{name} [{tag}]");
        assert!(
            on.states <= off.states,
            "{name} [{tag}]: pruning added states ({} > {})",
            on.states,
            off.states
        );
    } else if !on.complete {
        assert_eq!(
            on.class,
            OscillationClass::Unknown,
            "{name} [{tag}]: an incomplete pruned search cannot classify"
        );
    }
    // (off capped, on complete: pruning resolved the instance — legal.)
}

/// The fields that must be bit-identical across worker counts: everything
/// except wall-clock-flavored metrics.
fn determinism_key(v: &Verdict) -> impl PartialEq + std::fmt::Debug {
    (
        v.class,
        v.states,
        v.complete,
        v.stop.state_cap(),
        v.stop.memory_budget(),
        v.stable_vectors.clone(),
        v.metrics.as_ref().map(|m| (m.por_ample, m.por_full)),
    )
}

#[test]
fn every_committed_specimen_is_por_equivalent() {
    for sub in ["paper", "specimens"] {
        for (name, spec) in corpus_specs(sub) {
            for symmetry in [false, true] {
                let on1 = classify_spec(&spec, &opts(true, symmetry, 1))
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                let on8 = classify_spec(&spec, &opts(true, symmetry, 8))
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(
                    determinism_key(&on1),
                    determinism_key(&on8),
                    "{name} (symmetry={symmetry}): POR verdict depends on --jobs"
                );
                // The unpruned baseline; `npc-1var` is the one expensive
                // capped search, so run it at one worker count only (the
                // unpruned path's jobs-independence is pinned by the
                // analysis crate's parallel equivalence suite).
                let off_jobs: &[usize] = if name == "npc-1var" { &[8] } else { &[1, 8] };
                for &jobs in off_jobs {
                    let off = classify_spec(&spec, &opts(false, symmetry, jobs))
                        .unwrap_or_else(|e| panic!("{name}: {e}"));
                    let tag = format!("symmetry={symmetry} jobs={jobs}");
                    assert_equivalent(&name, &tag, &off, &on8);
                }
            }
        }
    }
}

#[test]
fn npc_1var_completes_only_under_por() {
    let (_, spec) = corpus_specs("specimens")
        .into_iter()
        .find(|(n, _)| n == "npc-1var")
        .expect("npc-1var specimen is committed");

    // Without the reduction the default 200k cap is not enough.
    let off = classify_spec(&spec, &opts(false, false, 8)).unwrap();
    assert!(off.is_inconclusive(), "got {:?}", off.class);
    assert_eq!(off.stop.state_cap(), Some(200_000));

    // With it, the search finishes with room to spare and a verdict.
    let on = classify_spec(&spec, &opts(true, false, 8)).unwrap();
    assert!(
        on.complete,
        "POR must crack the gadget under the default cap"
    );
    assert_eq!(on.class, OscillationClass::Transient);
    assert!(
        on.states < 50_000,
        "expected an order-of-magnitude reduction, got {} states",
        on.states
    );
    let m = on.metrics.expect("instrumented path");
    assert!(m.por_ample > 0, "ample branches must actually fire");
}
