//! A campaign with a fixed seed and budget produces a byte-identical
//! corpus tree, run to run.
//!
//! This is the property the on-disk format, the per-index RNG streams,
//! and the signature-derived filenames were designed for: the same small
//! campaign is run twice into two fresh directories and the trees are
//! diffed file by file (names and bytes).

use ibgp_hunt::{run_campaign, CampaignConfig};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Every file under `dir`, as relative path -> contents.
fn tree(dir: &Path) -> BTreeMap<String, String> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, String>) {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(root, &p, out);
            } else {
                let rel = p.strip_prefix(root).unwrap().to_string_lossy().into_owned();
                out.insert(rel, fs::read_to_string(&p).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    if dir.is_dir() {
        walk(dir, dir, &mut out);
    }
    out
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ibgp-hunt-determinism-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn same_seed_and_budget_give_a_byte_identical_corpus() {
    let dir_a = fresh_dir("a");
    let dir_b = fresh_dir("b");
    let run = |dir: &Path| {
        let cfg = CampaignConfig::new(20260806, 30, dir.to_path_buf());
        run_campaign(&cfg).unwrap()
    };
    let report_a = run(&dir_a);
    let report_b = run(&dir_b);
    assert_eq!(report_a.filed, report_b.filed);
    assert_eq!(report_a.duplicates, report_b.duplicates);
    assert_eq!(report_a.yields, report_b.yields);
    let tree_a = tree(&dir_a);
    let tree_b = tree(&dir_b);
    assert!(
        report_a.filed > 0,
        "the fixed-seed campaign must actually file specimens"
    );
    assert_eq!(tree_a.len(), report_a.filed);
    assert_eq!(tree_a, tree_b, "corpus trees differ between identical runs");
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn different_seeds_give_different_corpora() {
    let dir_a = fresh_dir("s1");
    let dir_b = fresh_dir("s2");
    run_campaign(&CampaignConfig::new(1, 25, dir_a.clone())).unwrap();
    run_campaign(&CampaignConfig::new(2, 25, dir_b.clone())).unwrap();
    assert_ne!(
        tree(&dir_a),
        tree(&dir_b),
        "different seeds should explore different topologies"
    );
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
