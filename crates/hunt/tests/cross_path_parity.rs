//! Cross-path verdict parity: flat reflection vs flat hierarchy.
//!
//! A reflection spec with plain clusters (no full-mesh override, no
//! declared client–client sessions, standard protocol) is expressible
//! verbatim as a depth-1 hierarchy: same routers, same links, each
//! `(reflectors, clients)` cluster becoming a flat `ClusterSpec`, since
//! top-level hierarchy reflectors are fully meshed exactly like flat
//! reflection's reflectors. The two engines must then derive the same
//! search evidence — the same set of stable best-exit vectors and the
//! same persistence/convergence conclusion.
//!
//! The one pinned taxonomy difference (see `from_search` in
//! `crates/hunt/src/verdict.rs` and README "Scenario kinds"): the flat
//! reflection path follows a unique-stable-vector search with an
//! all-at-once live-cycle probe and reports *transient* when the probe
//! finds a reachable live cycle, while the confed/hierarchy searches
//! have no probe and classify a unique stable vector as *stable*. A
//! class mismatch is therefore legal in exactly that shape and no other.

use ibgp_analysis::OscillationClass;
use ibgp_hierarchy::{ClusterSpec, HierMode, Member};
use ibgp_hunt::spec::{HierSpec, ReflectionSpec, ScenarioSpec, SpecKind};
use ibgp_hunt::{classify_spec, generate_spec, HuntOptions, Verdict};
use ibgp_proto::ProtocolVariant;

/// Re-express a plain-clustered standard reflection spec as a depth-1
/// hierarchy; `None` when the spec uses structure the hierarchy kind
/// cannot encode (full mesh, client–client sessions, other variants).
fn as_flat_hierarchy(spec: &ScenarioSpec) -> Option<ScenarioSpec> {
    let SpecKind::Reflection(r) = &spec.kind else {
        return None;
    };
    if r.full_mesh || !r.client_sessions.is_empty() || r.variant != ProtocolVariant::Standard {
        return None;
    }
    let top = r
        .clusters
        .iter()
        .map(|(reflectors, clients)| ClusterSpec {
            reflectors: reflectors.clone(),
            members: clients.iter().map(|&c| Member::Router(c)).collect(),
        })
        .collect();
    let mut out = spec.clone();
    out.kind = SpecKind::Hierarchy(HierSpec {
        top,
        mode: HierMode::SingleBest,
    });
    Some(out)
}

fn sorted_vectors(v: &Verdict) -> Vec<Vec<Option<ibgp_types::ExitPathId>>> {
    let mut sv = v.stable_vectors.clone();
    sv.sort();
    sv
}

fn assert_parity(name: &str, refl: &ScenarioSpec, hier: &ScenarioSpec, opts: &HuntOptions) {
    let rv = classify_spec(refl, opts).expect("reflection spec classifies");
    let hv = classify_spec(hier, opts).expect("hierarchy spec classifies");
    assert!(rv.complete && hv.complete, "{name}: both searches complete");
    assert_eq!(
        sorted_vectors(&rv),
        sorted_vectors(&hv),
        "{name}: the reachable stable best-exit vectors must agree"
    );
    assert_eq!(
        rv.class == OscillationClass::Persistent,
        hv.class == OscillationClass::Persistent,
        "{name}: persistence is probe-independent and must agree"
    );
    if rv.class != hv.class {
        // The pinned live-cycle-probe difference, in its only legal shape.
        assert_eq!(rv.class, OscillationClass::Transient, "{name}");
        assert_eq!(hv.class, OscillationClass::Stable, "{name}");
        assert_eq!(
            rv.stable_vectors.len(),
            1,
            "{name}: the probe only runs on a unique stable vector"
        );
    }
}

#[test]
fn paper_figures_agree_across_both_paths() {
    let opts = HuntOptions::default();
    let mut compared = Vec::new();
    for s in ibgp_scenarios::all_scenarios() {
        let refl = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
        let Some(hier) = as_flat_hierarchy(&refl) else {
            continue;
        };
        if hier.build().is_err() {
            continue;
        }
        assert_parity(s.name, &refl, &hier, &opts);
        compared.push(s.name);
    }
    assert!(
        compared.len() >= 2,
        "expected several figures expressible both ways, got {compared:?}"
    );
}

#[test]
fn the_disagree_gadget_agrees_across_both_paths() {
    // The canonical 2-cluster bistable gadget, covering the
    // multiple-stable-vector (transient) case explicitly.
    let refl = ScenarioSpec {
        name: "disagree".into(),
        routers: 4,
        links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
        kind: SpecKind::Reflection(ReflectionSpec {
            full_mesh: false,
            clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
            client_sessions: vec![],
            variant: ProtocolVariant::Standard,
            loop_prevention: false,
        }),
        exits: vec![
            ibgp_hunt::ExitSpec::new(1, 2, 1),
            ibgp_hunt::ExitSpec::new(2, 3, 1),
        ],
    };
    let hier = as_flat_hierarchy(&refl).expect("plain clusters are expressible");
    let opts = HuntOptions::default();
    assert_parity("disagree", &refl, &hier, &opts);
    let rv = classify_spec(&refl, &opts).unwrap();
    assert_eq!(rv.class, OscillationClass::Transient);
    assert_eq!(rv.stable_vectors.len(), 2);
}

#[test]
fn generated_reflection_instances_agree_across_both_paths() {
    let opts = HuntOptions::default();
    let mut compared = 0;
    for family in [
        ibgp_hunt::Family::Reflection,
        ibgp_hunt::Family::MultiReflector,
    ] {
        for index in 0..8 {
            let refl = generate_spec(family, 11, index);
            let Some(hier) = as_flat_hierarchy(&refl) else {
                continue;
            };
            if refl.build().is_err() || hier.build().is_err() {
                continue;
            }
            assert_parity(&refl.name, &refl, &hier, &opts);
            compared += 1;
        }
    }
    assert!(compared >= 4, "too few comparable instances: {compared}");
}
