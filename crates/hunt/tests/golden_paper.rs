//! The golden paper corpus under `corpus/paper/` stays faithful.
//!
//! Two guarantees per committed figure file:
//!
//! 1. **Byte stability** — the file equals `print(from_scenario(fig))`,
//!    so neither the exporter, the printer, nor the catalog figure can
//!    drift without this test noticing (rerun
//!    `cargo run -p ibgp-hunt --example export_paper` intentionally).
//! 2. **Verdict fidelity** — parsing the file and classifying it through
//!    the spec pipeline reproduces the figure's known oscillation class
//!    under the standard protocol: fig 1(a) and fig 13 persistently
//!    oscillate, fig 2 is transient (two stable outcomes), and the rest
//!    are stable.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::spec::ScenarioSpec;
use ibgp_hunt::{classify_spec, parse, print, HuntOptions};
use ibgp_proto::ProtocolVariant;
use std::path::PathBuf;

fn paper_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus/paper")
}

const EXPECTED: [(&str, OscillationClass); 7] = [
    ("fig1a", OscillationClass::Persistent),
    ("fig1b", OscillationClass::Stable),
    ("fig2", OscillationClass::Transient),
    ("fig3", OscillationClass::Stable),
    ("fig12", OscillationClass::Stable),
    ("fig13", OscillationClass::Persistent),
    ("fig14", OscillationClass::Stable),
];

#[test]
fn golden_files_match_the_exporter_byte_for_byte() {
    for s in ibgp_scenarios::all_scenarios() {
        let path = paper_dir().join(format!("{}.ibgp", s.name));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let expected = print(&ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard));
        assert_eq!(
            on_disk, expected,
            "{} drifted; rerun `cargo run -p ibgp-hunt --example export_paper`",
            s.name
        );
    }
}

#[test]
fn every_catalog_figure_has_a_golden_and_vice_versa() {
    let mut catalog: Vec<String> = ibgp_scenarios::all_scenarios()
        .iter()
        .map(|s| s.name.to_string())
        .collect();
    catalog.sort();
    let mut goldens: Vec<String> = std::fs::read_dir(paper_dir())
        .expect("corpus/paper exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    goldens.sort();
    assert_eq!(catalog, goldens);
    let mut expected: Vec<String> = EXPECTED.iter().map(|(n, _)| n.to_string()).collect();
    expected.sort();
    assert_eq!(catalog, expected, "EXPECTED table out of date");
}

#[test]
fn parsed_goldens_reproduce_the_known_verdicts() {
    let opts = HuntOptions {
        max_states: 200_000,
        ..HuntOptions::default()
    };
    for (name, want) in EXPECTED {
        let path = paper_dir().join(format!("{name}.ibgp"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let spec = parse(&text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        let verdict = classify_spec(&spec, &opts)
            .unwrap_or_else(|e| panic!("{name} failed to classify: {e}"));
        assert_eq!(
            verdict.class, want,
            "{name}: expected {want:?}, got {:?} ({} states, complete {})",
            verdict.class, verdict.states, verdict.complete
        );
        assert!(verdict.complete, "{name}: search must complete");
    }
}
