//! Exactness control for the loop-prevention mechanics: with a single
//! cluster behind a single reflector (no reflector–reflector
//! redundancy), the message-level attributes are inert — CLUSTER_LIST
//! can never accumulate a second entry so the receive-side loop check
//! never fires, and SSLD only suppresses copies the recipient already
//! originates — so classification with loop prevention on must agree
//! with the paper's `Transfer` relation exactly, on the verdict *and*
//! on the reachable stable outcomes.

use ibgp_hunt::spec::{ExitSpec, ReflectionSpec, ScenarioSpec, SpecKind};
use ibgp_hunt::{classify_spec, HuntOptions};
use ibgp_proto::ProtocolVariant;
use proptest::prelude::*;

/// One random single-reflector scenario: router 0 reflects for everyone
/// else; a random spanning chain plus extra chords for IGP variety;
/// 2–3 exits with varied attributes at random routers.
fn single_rr_spec(n: usize, seed: u64) -> ScenarioSpec {
    // Small deterministic LCG so cases derive entirely from `seed`
    // (keeps the property reproducible from the proptest case alone).
    let mut state = seed | 1;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound.max(1)
    };
    let mut links = Vec::new();
    for v in 1..n as u32 {
        // Chain keeps the IGP connected; random costs vary the metric.
        links.push((v - 1, v, 1 + next(9)));
    }
    for _ in 0..next(3) {
        let u = next(n as u64) as u32;
        let v = next(n as u64) as u32;
        if u != v && !links.iter().any(|&(a, b, _)| (a, b) == (u, v) || (b, a) == (u, v)) {
            links.push((u, v, 1 + next(9)));
        }
    }
    let exits = (0..2 + next(2))
        .map(|i| {
            ExitSpec::new(i as u32 + 1, next(n as u64) as u32, 1 + (i as u32 % 2))
                .med(next(20) as u32)
        })
        .collect();
    ScenarioSpec {
        name: format!("single-rr-{seed}"),
        routers: n,
        links,
        kind: SpecKind::Reflection(ReflectionSpec {
            full_mesh: false,
            clusters: vec![(vec![0], (1..n as u32).collect())],
            client_sessions: Vec::new(),
            variant: ProtocolVariant::Standard,
            loop_prevention: false,
        }),
        exits,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn single_cluster_single_reflector_verdicts_are_identical(
        n in 2usize..6,
        seed in any::<u64>(),
    ) {
        let plain = single_rr_spec(n, seed);
        let mut lp = plain.clone();
        match &mut lp.kind {
            SpecKind::Reflection(r) => r.loop_prevention = true,
            _ => unreachable!(),
        }
        let opts = HuntOptions::default();
        let off = classify_spec(&plain, &opts).unwrap();
        let on = classify_spec(&lp, &opts).unwrap();
        prop_assert_eq!(off.class, on.class, "lp flipped the verdict on {}", plain.name);
        prop_assert_eq!(off.complete, on.complete);
        // Same reachable stable outcomes, not just the same class.
        let mut a = off.stable_vectors.clone();
        let mut b = on.stable_vectors.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "lp changed the stable set on {}", plain.name);
    }
}
