//! Property test: the `.ibgp` printer and parser round-trip exactly.
//!
//! `parse(&print(&s)) == Ok(s)` must hold for every valid spec. The specs
//! come from the campaign generator itself (so all five families —
//! including confederations and nested hierarchies — and every structure
//! the campaign can file are covered), with the protocol variant and
//! advertisement mode further randomized beyond what the generator emits.

use ibgp_confed::ConfedMode;
use ibgp_hierarchy::HierMode;
use ibgp_hunt::generate::{generate_spec, ALL_FAMILIES};
use ibgp_hunt::spec::SpecKind;
use ibgp_hunt::{parse, print};
use ibgp_proto::ProtocolVariant;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_round_trips(seed in any::<u64>(), index in 0u64..64, twist in any::<u8>()) {
        let family = ALL_FAMILIES[(seed % ALL_FAMILIES.len() as u64) as usize];
        let mut spec = generate_spec(family, seed, index);
        // Exercise every protocol spelling, not just the generator's picks.
        match &mut spec.kind {
            SpecKind::Reflection(r) => {
                r.variant = match twist % 3 {
                    0 => ProtocolVariant::Standard,
                    1 => ProtocolVariant::Walton,
                    _ => ProtocolVariant::Modified,
                };
                // The loop-prevention directive must survive the trip in
                // both states (and never leak into the protocol line).
                r.loop_prevention = twist >= 128;
            }
            SpecKind::Confed(c) => {
                c.mode = if twist.is_multiple_of(2) {
                    ConfedMode::SingleBest
                } else {
                    ConfedMode::SetAdvertisement
                };
            }
            SpecKind::Hierarchy(h) => {
                h.mode = if twist.is_multiple_of(2) {
                    HierMode::SingleBest
                } else {
                    HierMode::SetAdvertisement
                };
            }
        }
        let text = print(&spec);
        let back = parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&spec), "not a fixed point:\n{}", text);
        // And printing the parsed spec reproduces the bytes (the printer
        // is deterministic and order-preserving).
        prop_assert_eq!(print(&back.unwrap()), text);
    }

    #[test]
    fn every_family_round_trips_each_seed(seed in any::<u64>()) {
        for family in ALL_FAMILIES {
            let spec = generate_spec(family, seed, 0);
            prop_assert_eq!(parse(&print(&spec)).unwrap(), spec);
        }
    }
}
