//! Golden re-classification through the constraint-solver backend.
//!
//! Every committed `.ibgp` specimen — paper figures and seeded
//! specimens — is reflection + standard protocol, so `--solver sat`
//! applies to all of them. The contract against the search baseline
//! (run with `--por`, which completes every committed specimen):
//!
//! * the solver verdict is complete, visits zero reachable states, and
//!   carries the exact global stable-routing count;
//! * the class agrees with the completed search's class, and the global
//!   fixed-point set equals the reachable stable-vector set — on every
//!   committed specimen **except `fig3`**, the one place where the two
//!   taxonomies genuinely part ways: Fig 3's MED-0 solution is a fixed
//!   point only E-BGP injection *timing* can reach, invisible to the §4
//!   all-routes-upfront search, so the search reports a unique reachable
//!   fixed point (stable) while the solver reports both global ones
//!   (transient — which is the paper's own description of the figure);
//! * `npc-1var` is the headline: the plain search caps out at 200 000
//!   states and brute-force enumeration would need 6^10 ≈ 60.5 million
//!   candidates, but the solver proves "exactly one stable routing,
//!   transient oscillation" without visiting a single state.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::{classify_spec, parse, HuntOptions};
use ibgp_types::{SolverMode, VerdictOrigin};
use std::path::PathBuf;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../corpus/{sub}"))
}

fn corpus_specs(sub: &str) -> Vec<(String, ibgp_hunt::ScenarioSpec)> {
    let dir = corpus_dir(sub);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .ibgp files under {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("unreadable {}: {e}", p.display()));
            let spec = parse(&text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, spec)
        })
        .collect()
}

fn opts(solver: SolverMode, por: bool) -> HuntOptions {
    HuntOptions {
        solver,
        por,
        ..HuntOptions::default()
    }
}

#[test]
fn every_committed_specimen_agrees_with_the_search_baseline() {
    for sub in ["paper", "specimens"] {
        for (name, spec) in corpus_specs(sub) {
            let sat = classify_spec(&spec, &opts(SolverMode::Sat, false))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(sat.origin, VerdictOrigin::Solver, "{name}: wrong backend");
            assert!(sat.complete, "{name}: solver failed to enumerate");
            assert_eq!(sat.states, 0, "{name}: the solver explored states");
            assert_eq!(
                sat.stable_count,
                Some(sat.stable_vectors.len()),
                "{name}: a complete enumeration must certify its count"
            );
            assert!(sat.metrics.is_none(), "{name}: no search to instrument");

            // The search baseline, with POR so `npc-1var` completes too.
            let search = classify_spec(&spec, &opts(SolverMode::Search, true))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(search.origin, VerdictOrigin::Search, "{name}");
            assert!(search.complete, "{name}: baseline search capped out");
            assert_eq!(search.stable_count, None, "{name}: search never certifies");
            if name == "fig3" {
                // The documented asymmetry: the MED-0 fixed point exists
                // but is unreachable without E-BGP injection timing.
                assert_eq!(search.class, OscillationClass::Stable, "{name}");
                assert_eq!(sat.class, OscillationClass::Transient, "{name}");
                assert_eq!(search.stable_vectors.len(), 1, "{name}");
                assert_eq!(sat.stable_vectors.len(), 2, "{name}");
                assert!(
                    search
                        .stable_vectors
                        .iter()
                        .all(|v| sat.stable_vectors.contains(v)),
                    "{name}: the reachable fixed point must be among the global ones"
                );
            } else {
                assert_eq!(
                    sat.class, search.class,
                    "{name}: class drifted across backends"
                );
                assert_eq!(
                    sat.stable_vectors, search.stable_vectors,
                    "{name}: every stable routing here is reachable"
                );
            }
        }
    }
}

#[test]
fn npc_1var_is_exactly_counted_without_search() {
    let (_, spec) = corpus_specs("specimens")
        .into_iter()
        .find(|(n, _)| n == "npc-1var")
        .expect("npc-1var specimen is committed");

    // The plain search drowns in interleavings under the default cap...
    let search = classify_spec(&spec, &opts(SolverMode::Search, false)).unwrap();
    assert!(search.is_inconclusive(), "got {:?}", search.class);
    assert_eq!(search.stop.state_cap(), Some(200_000));

    // ...while the solver proves the exact global count: one stable
    // routing (the satisfying assignment of J = (x0)), plus a live
    // cycle around it, hence transient.
    let sat = classify_spec(&spec, &opts(SolverMode::Sat, false)).unwrap();
    assert!(sat.complete);
    assert_eq!(sat.class, OscillationClass::Transient);
    assert_eq!(sat.stable_count, Some(1));
    assert_eq!(sat.states, 0);
    assert_eq!(sat.origin, VerdictOrigin::Solver);

    // The verdict says so in its own words.
    let rendered = sat.render(&spec.name);
    assert!(
        rendered.contains("1 stable routing(s) in total, reachable or not"),
        "unexpected rendering:\n{rendered}"
    );
}
