//! Golden re-classification under the flat state encoding.
//!
//! Every committed `.ibgp` specimen — the paper figures under
//! `corpus/paper/` and the seeded specimens under `corpus/specimens/` —
//! must classify to *exactly* the same verdict under the flat
//! fixed-width encoding as under the legacy `StateKey` path: class,
//! state count, completeness, cap/memory status, and the byte-identical
//! stable-vector list. The paper figures additionally pin their known
//! classes, so an encoding bug cannot hide behind a matching-but-wrong
//! pair of verdicts. Symmetry composed with the flat encoding rides
//! along as a third column.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::{classify_spec, parse, HuntOptions, Verdict};
use std::path::PathBuf;

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../corpus/{sub}"))
}

fn corpus_specs(sub: &str) -> Vec<(String, ibgp_hunt::ScenarioSpec)> {
    let dir = corpus_dir(sub);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "ibgp"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .ibgp files under {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("unreadable {}: {e}", p.display()));
            let spec = parse(&text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            (name, spec)
        })
        .collect()
}

fn opts(flat: bool, symmetry: bool) -> HuntOptions {
    HuntOptions {
        flat,
        symmetry,
        ..HuntOptions::default()
    }
}

fn assert_verdicts_identical(flat: &Verdict, legacy: &Verdict, name: &str) {
    assert_eq!(flat.class, legacy.class, "{name}: class drifted");
    assert_eq!(flat.states, legacy.states, "{name}: state count drifted");
    assert_eq!(
        flat.complete, legacy.complete,
        "{name}: completeness drifted"
    );
    assert_eq!(
        flat.stop.state_cap(),
        legacy.stop.state_cap(),
        "{name}: cap status drifted"
    );
    assert_eq!(
        flat.stop.memory_budget(),
        legacy.stop.memory_budget(),
        "{name}: memory status drifted"
    );
    assert_eq!(
        flat.stable_vectors, legacy.stable_vectors,
        "{name}: stable vectors drifted"
    );
    if let (Some(fm), Some(lm)) = (&flat.metrics, &legacy.metrics) {
        assert_eq!(fm.activations, lm.activations, "{name}: activations");
        assert_eq!(fm.messages, lm.messages, "{name}: messages");
        assert_eq!(fm.best_changes, lm.best_changes, "{name}: best changes");
        assert_eq!(fm.frontier_depth, lm.frontier_depth, "{name}: depth");
    }
}

const PAPER_EXPECTED: [(&str, OscillationClass); 7] = [
    ("fig1a", OscillationClass::Persistent),
    ("fig1b", OscillationClass::Stable),
    ("fig2", OscillationClass::Transient),
    ("fig3", OscillationClass::Stable),
    ("fig12", OscillationClass::Stable),
    ("fig13", OscillationClass::Persistent),
    ("fig14", OscillationClass::Stable),
];

#[test]
fn every_committed_specimen_classifies_identically_under_flat_encoding() {
    for sub in ["paper", "specimens"] {
        for (name, spec) in corpus_specs(sub) {
            let legacy = classify_spec(&spec, &opts(false, false))
                .unwrap_or_else(|e| panic!("{name}: legacy classify failed: {e}"));
            let flat = classify_spec(&spec, &opts(true, false))
                .unwrap_or_else(|e| panic!("{name}: flat classify failed: {e}"));
            assert_verdicts_identical(&flat, &legacy, &name);

            // Symmetry composes with the encoding: flat+symmetry must
            // match legacy+symmetry verdict-for-verdict too.
            let legacy_sym = classify_spec(&spec, &opts(false, true))
                .unwrap_or_else(|e| panic!("{name}: legacy+symmetry classify failed: {e}"));
            let flat_sym = classify_spec(&spec, &opts(true, true))
                .unwrap_or_else(|e| panic!("{name}: flat+symmetry classify failed: {e}"));
            assert_verdicts_identical(&flat_sym, &legacy_sym, &format!("{name}+symmetry"));
        }
    }
}

#[test]
fn paper_figures_keep_their_known_classes_under_flat_encoding() {
    let dir_names: Vec<String> = corpus_specs("paper")
        .iter()
        .map(|(n, _)| n.clone())
        .collect();
    let mut expected: Vec<&str> = PAPER_EXPECTED.iter().map(|(n, _)| *n).collect();
    expected.sort_unstable();
    assert_eq!(dir_names, expected, "PAPER_EXPECTED table out of date");
    for (name, spec) in corpus_specs("paper") {
        let want = PAPER_EXPECTED.iter().find(|(n, _)| *n == name).unwrap().1;
        let flat = classify_spec(&spec, &opts(true, false)).unwrap();
        assert_eq!(flat.class, want, "{name} under the flat encoding");
        assert!(flat.complete, "{name}: flat search must complete");
    }
}
