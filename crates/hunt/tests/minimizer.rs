//! Minimizer sanity on the paper's own figures.
//!
//! Fig 1(a) (persistent oscillation) and fig 2 (transient) are the
//! paper's minimal gadgets: the minimizer must return them unchanged. A
//! fig 1(a) padded with idle clients (no exits, hanging off existing
//! clusters) must shrink back to the structural core — the same canonical
//! signature as the unpadded figure — and every minimizer-emitted spec
//! must classify to its parent's verdict.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::spec::{ExitSpec, ScenarioSpec, SpecKind};
use ibgp_hunt::{classify_spec, minimize, signature, HuntOptions};
use ibgp_proto::ProtocolVariant;

fn opts() -> HuntOptions {
    HuntOptions {
        max_states: 200_000,
        ..HuntOptions::default()
    }
}

fn fig(name: &str) -> ScenarioSpec {
    let s = ibgp_scenarios::by_name(name).expect("catalog figure");
    ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard)
}

#[test]
fn fig1a_is_already_minimal() {
    let spec = fig("fig1a");
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.spec, spec, "fig1a must come back unchanged");
    assert_eq!(
        out.removed_routers + out.removed_sessions + out.removed_exits,
        0
    );
    assert_eq!(out.verdict.class, OscillationClass::Persistent);
}

#[test]
fn fig2_is_already_minimal() {
    let spec = fig("fig2");
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.spec, spec, "fig2 must come back unchanged");
    assert_eq!(out.verdict.class, OscillationClass::Transient);
}

/// Fig 1(a) with two idle padding clients: one more client in each
/// cluster, physically attached, injecting nothing.
fn padded_fig1a() -> ScenarioSpec {
    let mut spec = fig("fig1a");
    let first = spec.routers as u32;
    let second = first + 1;
    spec.routers += 2;
    spec.links.push((0, first, 3));
    spec.links.push((3, second, 2));
    match &mut spec.kind {
        SpecKind::Reflection(r) => {
            r.clusters[0].1.push(first);
            r.clusters[1].1.push(second);
        }
        other => panic!("fig1a is a reflection spec, got {other:?}"),
    }
    spec.name = "fig1a-padded".into();
    spec
}

#[test]
fn padded_fig1a_shrinks_back_to_the_core() {
    let spec = padded_fig1a();
    let baseline = classify_spec(&spec, &opts()).unwrap();
    assert_eq!(
        baseline.class,
        OscillationClass::Persistent,
        "padding must not change the verdict"
    );
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.removed_routers, 2, "both padding clients removed");
    assert_eq!(out.verdict.class, OscillationClass::Persistent);
    assert_eq!(
        signature(&out.spec),
        signature(&fig("fig1a")),
        "minimized spec is structurally fig1a:\n{}",
        ibgp_hunt::print(&out.spec)
    );
}

#[test]
fn emitted_specimens_classify_like_their_parent() {
    // Re-check the minimizer's invariant from the outside, on a spec
    // with removable structure of every kind (an extra exit and an
    // extra client-client session on top of the padding).
    let mut spec = padded_fig1a();
    match &mut spec.kind {
        SpecKind::Reflection(r) => r.client_sessions.push((1, 2)),
        _ => unreachable!(),
    }
    spec.exits.push(ExitSpec::new(9, 1, 3).med(2));
    let parent = classify_spec(&spec, &opts()).unwrap();
    let out = minimize(&spec, &opts()).unwrap();
    let child = classify_spec(&out.spec, &opts()).unwrap();
    assert_eq!(child.class, parent.class);
    assert_eq!(out.verdict.class, parent.class);
}
