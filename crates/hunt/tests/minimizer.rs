//! Minimizer sanity on the paper's own figures.
//!
//! Fig 1(a) (persistent oscillation) and fig 2 (transient) are the
//! paper's minimal gadgets: the minimizer must return them unchanged. A
//! fig 1(a) padded with idle clients (no exits, hanging off existing
//! clusters) must shrink back to the structural core — the same canonical
//! signature as the unpadded figure — and every minimizer-emitted spec
//! must classify to its parent's verdict.

use ibgp_analysis::OscillationClass;
use ibgp_hunt::spec::{ExitSpec, ScenarioSpec, SpecKind};
use ibgp_hunt::{classify_spec, minimize, signature, HuntOptions};
use ibgp_proto::ProtocolVariant;

fn opts() -> HuntOptions {
    HuntOptions {
        max_states: 200_000,
        ..HuntOptions::default()
    }
}

fn fig(name: &str) -> ScenarioSpec {
    let s = ibgp_scenarios::by_name(name).expect("catalog figure");
    ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard)
}

#[test]
fn fig1a_is_already_minimal() {
    let spec = fig("fig1a");
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.spec, spec, "fig1a must come back unchanged");
    assert_eq!(
        out.removed_routers + out.removed_sessions + out.removed_exits,
        0
    );
    assert_eq!(out.verdict.class, OscillationClass::Persistent);
}

#[test]
fn fig2_is_already_minimal() {
    let spec = fig("fig2");
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.spec, spec, "fig2 must come back unchanged");
    assert_eq!(out.verdict.class, OscillationClass::Transient);
}

/// Fig 1(a) with two idle padding clients: one more client in each
/// cluster, physically attached, injecting nothing.
fn padded_fig1a() -> ScenarioSpec {
    let mut spec = fig("fig1a");
    let first = spec.routers as u32;
    let second = first + 1;
    spec.routers += 2;
    spec.links.push((0, first, 3));
    spec.links.push((3, second, 2));
    match &mut spec.kind {
        SpecKind::Reflection(r) => {
            r.clusters[0].1.push(first);
            r.clusters[1].1.push(second);
        }
        other => panic!("fig1a is a reflection spec, got {other:?}"),
    }
    spec.name = "fig1a-padded".into();
    spec
}

#[test]
fn padded_fig1a_shrinks_back_to_the_core() {
    let spec = padded_fig1a();
    let baseline = classify_spec(&spec, &opts()).unwrap();
    assert_eq!(
        baseline.class,
        OscillationClass::Persistent,
        "padding must not change the verdict"
    );
    let out = minimize(&spec, &opts()).unwrap();
    assert_eq!(out.removed_routers, 2, "both padding clients removed");
    assert_eq!(out.verdict.class, OscillationClass::Persistent);
    assert_eq!(
        signature(&out.spec),
        signature(&fig("fig1a")),
        "minimized spec is structurally fig1a:\n{}",
        ibgp_hunt::print(&out.spec)
    );
}

/// A baseline stopped by the memory budget (not the state cap) is just
/// as inconclusive as a capped one: there is no verdict to preserve, so
/// the spec must come back untouched — and the verdict must say the
/// *byte budget* stopped it, not fabricate a cap.
#[test]
fn memory_stopped_baselines_come_back_unchanged() {
    let spec = fig("fig13");
    let tight = HuntOptions {
        max_bytes: Some(64),
        ..opts()
    };
    let out = minimize(&spec, &tight).unwrap();
    assert_eq!(out.spec, spec, "no reduction may be attempted");
    assert_eq!(out.verdict.class, OscillationClass::Unknown);
    assert_eq!(
        out.verdict.stop.memory_budget(),
        Some(64),
        "the byte budget is the recorded stop reason"
    );
    assert_eq!(out.verdict.stop.state_cap(), None, "no state cap was hit");
    assert_eq!(
        out.removed_routers + out.removed_sessions + out.removed_exits,
        0
    );
    assert_eq!(out.reclassifications, 1, "only the baseline was classified");
}

/// A candidate whose re-classification goes inconclusive mid-run is
/// skipped, never accepted. Fig 3 is the committed instance: 42 reachable
/// states (stable), and removing its first exit *grows* the space to 63
/// states — the dropped route was damping the interleavings — so under a
/// 50-state cap that shrunken candidate's search caps out with an Unknown
/// verdict. The minimizer must pass over such candidates and still emit a
/// completely-searched, verdict-preserving result.
#[test]
fn inconclusive_candidates_are_skipped_not_accepted() {
    let spec = fig("fig3");
    let capped = HuntOptions {
        max_states: 50,
        ..opts()
    };
    let baseline = classify_spec(&spec, &capped).unwrap();
    assert_eq!(baseline.class, OscillationClass::Stable);
    assert!(baseline.complete, "baseline fits under the 50-state cap");

    // The precondition this test rests on: dropping exit 0 pushes the
    // reachable space past the cap, so that candidate is inconclusive.
    let mut grown = spec.clone();
    grown.exits.remove(0);
    let v = classify_spec(&grown, &capped).unwrap();
    assert!(
        v.is_inconclusive(),
        "exit-0 removal must cap out, got {:?} in {} states",
        v.class,
        v.states
    );

    let out = minimize(&spec, &capped).unwrap();
    assert_eq!(out.verdict.class, OscillationClass::Stable);
    assert!(
        out.verdict.complete,
        "an accepted candidate was never inconclusive"
    );
    let recheck = classify_spec(&out.spec, &capped).unwrap();
    assert_eq!(recheck.class, OscillationClass::Stable);
    assert!(recheck.complete);
}

#[test]
fn emitted_specimens_classify_like_their_parent() {
    // Re-check the minimizer's invariant from the outside, on a spec
    // with removable structure of every kind (an extra exit and an
    // extra client-client session on top of the padding).
    let mut spec = padded_fig1a();
    match &mut spec.kind {
        SpecKind::Reflection(r) => r.client_sessions.push((1, 2)),
        _ => unreachable!(),
    }
    spec.exits.push(ExitSpec::new(9, 1, 3).med(2));
    let parent = classify_spec(&spec, &opts()).unwrap();
    let out = minimize(&spec, &opts()).unwrap();
    let child = classify_spec(&out.spec, &opts()).unwrap();
    assert_eq!(child.class, parent.class);
    assert_eq!(out.verdict.class, parent.class);
}
