//! Regenerate the golden paper-figure corpus.
//!
//! Writes every catalog scenario as a `.ibgp` specimen under
//! `corpus/paper/` (relative to the workspace root). The files are
//! committed; `tests/golden_paper.rs` asserts they stay byte-identical to
//! what this exporter produces and that each still classifies to the
//! figure's known verdict. Rerun after changing the format or a figure:
//!
//! ```text
//! cargo run -p ibgp-hunt --example export_paper
//! ```

use ibgp_hunt::spec::ScenarioSpec;
use ibgp_proto::ProtocolVariant;
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("corpus/paper");
    std::fs::create_dir_all(&dir).expect("create corpus/paper");
    for s in ibgp_scenarios::all_scenarios() {
        let spec = ScenarioSpec::from_scenario(&s, ProtocolVariant::Standard);
        let path = dir.join(format!("{}.ibgp", s.name));
        std::fs::write(&path, ibgp_hunt::print(&spec)).expect("write specimen");
        println!("wrote {}", path.display());
    }
}
