//! Seeded random scenario generation for the hunting campaign.
//!
//! Each [`Family`] is a topology shape the paper implicates in
//! oscillation: full-mesh I-BGP (the §3 baseline that cannot persistently
//! oscillate but can disagree), flat reflection (§4), clusters with
//! redundant reflectors (fig 1a's shape), nested reflection hierarchies,
//! and confederations (§8). Draws are biased toward the known oscillation
//! ingredient — several exit paths from the *same* neighboring AS with
//! distinct MEDs, injected at topologically separated routers — so a
//! budget of a few hundred topologies reliably yields specimens.
//!
//! Generation is deterministic: `generate_spec(family, seed, index)`
//! derives a private RNG stream from `(seed, index, family)`, so a
//! campaign with a fixed seed and budget produces byte-identical specs
//! regardless of which other indices were generated around it.

use crate::spec::{ConfedSpec, ExitSpec, HierSpec, ReflectionSpec, ScenarioSpec, SpecKind};
use ibgp_confed::ConfedMode;
use ibgp_hierarchy::{ClusterSpec, HierMode, Member};
use ibgp_proto::ProtocolVariant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A generated topology family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Fully meshed I-BGP.
    FullMesh,
    /// Flat route reflection, one reflector per cluster.
    Reflection,
    /// Flat route reflection with a redundantly reflected cluster.
    MultiReflector,
    /// Nested reflection hierarchy (depth 2).
    Hierarchy,
    /// Confederation of member sub-ASes.
    Confed,
}

/// Every family, in the order campaigns cycle through them.
pub const ALL_FAMILIES: [Family; 5] = [
    Family::Reflection,
    Family::MultiReflector,
    Family::Hierarchy,
    Family::Confed,
    Family::FullMesh,
];

impl Family {
    /// Stable keyword (CLI `--families` values and report labels).
    pub fn keyword(&self) -> &'static str {
        match self {
            Family::FullMesh => "mesh",
            Family::Reflection => "reflection",
            Family::MultiReflector => "multi-reflector",
            Family::Hierarchy => "hierarchy",
            Family::Confed => "confed",
        }
    }

    /// Whether this family generates flat-reflection specs, classified
    /// by the instrumented reflection search. Hierarchy and confed
    /// families go through their dedicated searches, which ignore the
    /// reflection-only knobs ([`crate::HuntOptions::reflection_only_flags`]).
    pub fn uses_reflection_search(&self) -> bool {
        !matches!(self, Family::Hierarchy | Family::Confed)
    }

    /// Parse a comma-separated family list (e.g. `reflection,confed`).
    pub fn parse_list(s: &str) -> Result<Vec<Family>, String> {
        s.split(',')
            .map(|t| t.trim())
            .filter(|t| !t.is_empty())
            .map(|t| {
                ALL_FAMILIES
                    .iter()
                    .copied()
                    .find(|f| f.keyword() == t)
                    .ok_or_else(|| {
                        format!(
                            "unknown family `{t}` (expected one of {})",
                            ALL_FAMILIES.map(|f| f.keyword()).join(", ")
                        )
                    })
            })
            .collect()
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

fn family_tag(f: Family) -> u64 {
    match f {
        Family::FullMesh => 1,
        Family::Reflection => 2,
        Family::MultiReflector => 3,
        Family::Hierarchy => 4,
        Family::Confed => 5,
    }
}

/// Random connected physical graph: spanning tree over a shuffled order
/// plus a few chords, costs in `1..=max_cost`.
fn connected_links(rng: &mut StdRng, n: usize, max_cost: u64) -> Vec<(u32, u32, u64)> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut links = Vec::new();
    let mut present: Vec<(u32, u32)> = Vec::new();
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        links.push((parent, child, rng.gen_range(1..=max_cost)));
        present.push((parent.min(child), parent.max(child)));
    }
    let extra = rng.gen_range(0..=n / 2);
    for _ in 0..extra {
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        let key = (u.min(v), u.max(v));
        if u == v || present.contains(&key) {
            continue;
        }
        present.push(key);
        links.push((u, v, rng.gen_range(1..=max_cost)));
    }
    links
}

/// Exit paths biased toward the paper's oscillation gadget. `groups` are
/// topologically separated injection sites (cluster client lists, sub-AS
/// memberships, singletons for a mesh); the draw reproduces fig 1(a)'s
/// shape: one anchor group receives an exit from AS 1 *and* an exit from
/// AS 2 with a high MED, while a different group receives the AS 2 exit
/// with a low MED. MED is comparable only within an AS, which is exactly
/// what breaks total orderability across the groups. A fourth uniform
/// exit is mixed in occasionally.
fn gen_exits(rng: &mut StdRng, groups: &[Vec<u32>]) -> Vec<ExitSpec> {
    debug_assert!(groups.iter().all(|g| !g.is_empty()));
    let g0 = rng.gen_range(0..groups.len());
    let g1 = if groups.len() > 1 {
        let shift = rng.gen_range(1..groups.len());
        (g0 + shift) % groups.len()
    } else {
        g0
    };
    let pick = |rng: &mut StdRng, g: usize| groups[g][rng.gen_range(0..groups[g].len())];
    let med_low = rng.gen_range(0..=3u32);
    let med_high = med_low + 1 + rng.gen_range(0..=4u32);
    let a0 = pick(rng, g0);
    let a1 = pick(rng, g0);
    let b = pick(rng, g1);
    let mut exits = vec![
        ExitSpec::new(1, a0, 1).med(rng.gen_range(0..=5)),
        ExitSpec::new(2, a1, 2).med(med_high),
        ExitSpec::new(3, b, 2).med(med_low),
    ];
    if rng.gen_bool(0.25) {
        let g = rng.gen_range(0..groups.len());
        let at = pick(rng, g);
        let mut e = ExitSpec::new(4, at, rng.gen_range(1..=2u32)).med(rng.gen_range(0..=5));
        if rng.gen_bool(0.3) {
            e.len = 2;
        }
        if rng.gen_bool(0.3) {
            e.pref = if rng.gen_bool(0.5) { 90 } else { 110 };
        }
        exits.push(e);
    }
    exits
}

/// Generate the `index`-th spec of a seeded campaign for one family.
pub fn generate_spec(family: Family, seed: u64, index: u64) -> ScenarioSpec {
    let stream = seed
        ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ family_tag(family).wrapping_mul(0xff51_afd7_ed55_8ccd);
    let mut rng = StdRng::seed_from_u64(stream);
    let name = format!("hunt-{}-s{seed}-i{index}", family.keyword());
    match family {
        Family::FullMesh => {
            let n = rng.gen_range(3..=6usize);
            let links = connected_links(&mut rng, n, 10);
            // In a mesh every router is its own injection site.
            let groups: Vec<Vec<u32>> = (0..n as u32).map(|r| vec![r]).collect();
            let exits = gen_exits(&mut rng, &groups);
            ScenarioSpec {
                name,
                routers: n,
                links,
                kind: SpecKind::Reflection(ReflectionSpec {
                    full_mesh: true,
                    clusters: vec![],
                    client_sessions: vec![],
                    variant: ProtocolVariant::Standard,
                    loop_prevention: false,
                }),
                exits,
            }
        }
        Family::Reflection | Family::MultiReflector => {
            let k = rng.gen_range(2..=3usize);
            // Cluster 0 gets two reflectors in the multi-reflector family
            // (fig 1a's redundancy), one otherwise.
            let reflectors_of = |c: usize| {
                if family == Family::MultiReflector && c == 0 {
                    2
                } else {
                    1
                }
            };
            // Budget clients so the total stays within 8 routers (the
            // exhaustive search is exponential in n); every cluster keeps
            // at least one client.
            let reflector_total: usize = (0..k).map(reflectors_of).sum();
            let mut remaining = 8 - reflector_total;
            let mut clients_of = Vec::with_capacity(k);
            for c in 0..k {
                let reserve = k - 1 - c;
                let pick = rng.gen_range(1..=2usize).min(remaining - reserve);
                clients_of.push(pick);
                remaining -= pick;
            }
            let n: usize = reflector_total + clients_of.iter().sum::<usize>();
            let mut next = 0u32;
            let mut clusters = Vec::with_capacity(k);
            let mut client_groups = Vec::with_capacity(k);
            for (c, &nc) in clients_of.iter().enumerate() {
                let rs: Vec<u32> = (0..reflectors_of(c))
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect();
                let cs: Vec<u32> = (0..nc)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect();
                client_groups.push(cs.clone());
                clusters.push((rs, cs));
            }
            let links = connected_links(&mut rng, n, 10);
            // Occasional intra-cluster client-client session (constraint 4).
            let mut client_sessions = Vec::new();
            if rng.gen_bool(0.3) {
                if let Some((_, cs)) = clusters.iter().find(|(_, cs)| cs.len() >= 2) {
                    client_sessions.push((cs[0], cs[1]));
                }
            }
            // Each cluster's client set is one injection site: the MED
            // conflict must span clusters to hide behind the reflectors.
            let exits = gen_exits(&mut rng, &client_groups);
            ScenarioSpec {
                name,
                routers: n,
                links,
                kind: SpecKind::Reflection(ReflectionSpec {
                    full_mesh: false,
                    clusters,
                    client_sessions,
                    variant: ProtocolVariant::Standard,
                    loop_prevention: false,
                }),
                exits,
            }
        }
        Family::Hierarchy => {
            // Top cluster: reflector 0, two nested flat clusters, and
            // optionally one direct leaf client.
            let sub_clients: Vec<usize> = (0..2).map(|_| rng.gen_range(1..=2usize)).collect();
            let direct_leaf = rng.gen_bool(0.4);
            let n = 1 + 2 + sub_clients.iter().sum::<usize>() + usize::from(direct_leaf);
            let mut next = 1u32;
            let mut members = Vec::new();
            let mut client_groups = Vec::new();
            for &nc in &sub_clients {
                let reflector = next;
                next += 1;
                let cs: Vec<u32> = (0..nc)
                    .map(|_| {
                        let id = next;
                        next += 1;
                        id
                    })
                    .collect();
                client_groups.push(cs.clone());
                members.push(Member::Cluster(ClusterSpec::flat(reflector, cs)));
            }
            if direct_leaf {
                members.push(Member::Router(next));
                client_groups.push(vec![next]);
            }
            let links = connected_links(&mut rng, n, 10);
            let mode = if rng.gen_bool(0.5) {
                HierMode::SingleBest
            } else {
                HierMode::SetAdvertisement
            };
            // Sub-cluster client sets (and the direct leaf) are the
            // injection sites; the conflict must cross the hierarchy.
            let exits = gen_exits(&mut rng, &client_groups);
            ScenarioSpec {
                name,
                routers: n,
                links,
                kind: SpecKind::Hierarchy(HierSpec {
                    top: vec![ClusterSpec {
                        reflectors: vec![0],
                        members,
                    }],
                    mode,
                }),
                exits,
            }
        }
        Family::Confed => {
            let s = rng.gen_range(2..=3usize);
            let sizes: Vec<usize> = (0..s).map(|_| rng.gen_range(1..=2usize)).collect();
            let n: usize = sizes.iter().sum();
            let mut next = 0u32;
            let sub_as: Vec<Vec<u32>> = sizes
                .iter()
                .map(|&sz| {
                    (0..sz)
                        .map(|_| {
                            let id = next;
                            next += 1;
                            id
                        })
                        .collect()
                })
                .collect();
            // Chain adjacent sub-ASes through random border routers, plus
            // an occasional closing link for three-member confederations.
            let mut confed_links = Vec::new();
            for w in sub_as.windows(2) {
                let u = w[0][rng.gen_range(0..w[0].len())];
                let v = w[1][rng.gen_range(0..w[1].len())];
                confed_links.push((u, v));
            }
            if s == 3 && rng.gen_bool(0.4) {
                let first = &sub_as[0];
                let last = &sub_as[s - 1];
                confed_links.push((
                    first[rng.gen_range(0..first.len())],
                    last[rng.gen_range(0..last.len())],
                ));
            }
            let links = connected_links(&mut rng, n, 10);
            let mode = if rng.gen_bool(0.5) {
                ConfedMode::SingleBest
            } else {
                ConfedMode::SetAdvertisement
            };
            // Sub-AS memberships are the injection sites: the MED pair
            // must straddle a confederation boundary to matter.
            let exits = gen_exits(&mut rng, &sub_as);
            ScenarioSpec {
                name,
                routers: n,
                links,
                kind: SpecKind::Confed(ConfedSpec {
                    sub_as,
                    confed_links,
                    mode,
                }),
                exits,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_independent_of_neighbors() {
        for family in ALL_FAMILIES {
            let a = generate_spec(family, 42, 7);
            let b = generate_spec(family, 42, 7);
            assert_eq!(a, b, "{family}");
            let c = generate_spec(family, 42, 8);
            assert_ne!(a.name, c.name);
        }
    }

    #[test]
    fn generated_specs_build() {
        for family in ALL_FAMILIES {
            for index in 0..40u64 {
                let spec = generate_spec(family, 1, index);
                assert!(
                    spec.build().is_ok(),
                    "{family} index {index} failed to build:\n{spec:?}"
                );
                assert!(spec.routers <= 8, "{family} too large");
                assert!(spec.exits.len() >= 2);
            }
        }
    }

    #[test]
    fn exits_carry_the_cross_group_med_conflict() {
        for family in ALL_FAMILIES {
            for index in 0..10u64 {
                let spec = generate_spec(family, 3, index);
                // The gadget pair: two AS-2 exits with distinct MEDs, and
                // one AS-1 exit colocated with the high-MED one.
                assert_eq!(spec.exits[1].next_as, 2, "{family}");
                assert_eq!(spec.exits[2].next_as, 2, "{family}");
                assert_ne!(spec.exits[1].med, spec.exits[2].med, "{family}");
                assert_eq!(spec.exits[0].next_as, 1, "{family}");
            }
        }
    }

    #[test]
    fn family_list_parses() {
        assert_eq!(
            Family::parse_list("reflection, confed").unwrap(),
            vec![Family::Reflection, Family::Confed]
        );
        assert!(Family::parse_list("bogus").is_err());
    }
}
