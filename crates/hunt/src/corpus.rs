//! On-disk corpus layout and bookkeeping.
//!
//! A corpus directory holds three verdict buckets of `.ibgp` specimens:
//!
//! ```text
//! corpus/
//!   oscillating/    # proven persistent oscillation
//!   bistable/       # transient: several stable outcomes or a live cycle
//!   inconclusive/   # state cap hit, no verdict
//! ```
//!
//! Filenames are derived from the canonical structural signature
//! (`sig-<16 hex>.ibgp`), so the layout itself deduplicates: refiling an
//! isomorphic specimen lands on an existing path. Stable specimens are
//! counted by campaigns but never filed — a corpus is a collection of
//! *problems*, not of working configurations.

use crate::format;
use crate::signature;
use crate::spec::ScenarioSpec;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The verdict buckets a corpus directory may contain, in display order.
pub const BUCKETS: [&str; 3] = ["oscillating", "bistable", "inconclusive"];

/// Errors loading a specimen from disk.
#[derive(Debug)]
pub enum CorpusError {
    /// The file could not be read.
    Io(io::Error),
    /// The file is not valid `.ibgp`.
    Format(format::FormatError),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "{e}"),
            CorpusError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<format::FormatError> for CorpusError {
    fn from(e: format::FormatError) -> Self {
        CorpusError::Format(e)
    }
}

/// Read and parse one `.ibgp` file.
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, CorpusError> {
    Ok(format::parse(&fs::read_to_string(path)?)?)
}

/// File a specimen into `dir/bucket/sig-<hex>.ibgp`, creating the bucket
/// directory as needed. Returns the path written.
pub fn write_specimen(dir: &Path, bucket: &str, spec: &ScenarioSpec) -> io::Result<PathBuf> {
    let sig = signature::signature(spec);
    let bucket_dir = dir.join(bucket);
    fs::create_dir_all(&bucket_dir)?;
    let path = bucket_dir.join(format!("{}.ibgp", signature::file_stem(&sig)));
    fs::write(&path, format::print(spec))?;
    Ok(path)
}

/// The signature stems already filed under every bucket of a corpus
/// directory (used by campaigns to dedup against prior runs). Missing
/// buckets count as empty.
pub fn existing_stems(dir: &Path) -> io::Result<std::collections::BTreeSet<String>> {
    let mut stems = std::collections::BTreeSet::new();
    for bucket in BUCKETS {
        let bucket_dir = dir.join(bucket);
        if !bucket_dir.is_dir() {
            continue;
        }
        for entry in sorted_entries(&bucket_dir)? {
            if let Some(stem) = specimen_stem(&entry) {
                stems.insert(stem);
            }
        }
    }
    Ok(stems)
}

fn specimen_stem(path: &Path) -> Option<String> {
    if path.extension().is_some_and(|e| e == "ibgp") {
        path.file_stem().map(|s| s.to_string_lossy().into_owned())
    } else {
        None
    }
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

/// Per-bucket statistics of a corpus directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// `(bucket, specimen count, router-count histogram, kind counts)`
    /// for each bucket that exists, in [`BUCKETS`] order.
    pub buckets: Vec<BucketStats>,
}

/// Statistics of one verdict bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BucketStats {
    /// Bucket name.
    pub name: String,
    /// Parseable specimens.
    pub specimens: usize,
    /// Files that failed to parse (corpus corruption indicator).
    pub unreadable: usize,
    /// Specimens per session-graph kind keyword.
    pub kinds: BTreeMap<String, usize>,
    /// Specimens per router count.
    pub sizes: BTreeMap<usize, usize>,
}

/// Walk a corpus directory and summarize every bucket. Deterministic:
/// directory entries are visited in sorted order.
pub fn stats(dir: &Path) -> io::Result<CorpusStats> {
    let mut out = CorpusStats::default();
    for bucket in BUCKETS {
        let bucket_dir = dir.join(bucket);
        if !bucket_dir.is_dir() {
            continue;
        }
        let mut b = BucketStats {
            name: bucket.to_string(),
            ..BucketStats::default()
        };
        for entry in sorted_entries(&bucket_dir)? {
            if specimen_stem(&entry).is_none() {
                continue;
            }
            match load_spec(&entry) {
                Ok(spec) => {
                    b.specimens += 1;
                    *b.kinds.entry(spec.kind.keyword().to_string()).or_default() += 1;
                    *b.sizes.entry(spec.routers).or_default() += 1;
                }
                Err(_) => b.unreadable += 1,
            }
        }
        out.buckets.push(b);
    }
    Ok(out)
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.buckets.is_empty() {
            return writeln!(f, "empty corpus (no bucket directories)");
        }
        for b in &self.buckets {
            write!(f, "{:<13} {:>5} specimens", b.name, b.specimens)?;
            if b.unreadable > 0 {
                write!(f, "  ({} unreadable)", b.unreadable)?;
            }
            writeln!(f)?;
            if b.specimens > 0 {
                let kinds: Vec<String> = b.kinds.iter().map(|(k, n)| format!("{k} {n}")).collect();
                writeln!(f, "{:<13}   kinds: {}", "", kinds.join(", "))?;
                let sizes: Vec<String> = b
                    .sizes
                    .iter()
                    .map(|(k, n)| format!("{k} routers x{n}"))
                    .collect();
                writeln!(f, "{:<13}   sizes: {}", "", sizes.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_spec, Family};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ibgp-hunt-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_round_trips_and_dedups_by_path() {
        let dir = tmpdir("rt");
        let spec = generate_spec(Family::Reflection, 5, 0);
        let p1 = write_specimen(&dir, "oscillating", &spec).unwrap();
        let p2 = write_specimen(&dir, "oscillating", &spec).unwrap();
        assert_eq!(p1, p2, "same signature files to the same path");
        assert_eq!(load_spec(&p1).unwrap(), spec);
        let stems = existing_stems(&dir).unwrap();
        assert_eq!(stems.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_summarize_buckets() {
        let dir = tmpdir("stats");
        write_specimen(
            &dir,
            "oscillating",
            &generate_spec(Family::Reflection, 5, 0),
        )
        .unwrap();
        write_specimen(&dir, "bistable", &generate_spec(Family::Confed, 5, 1)).unwrap();
        fs::write(dir.join("bistable").join("junk.ibgp"), "not ibgp").unwrap();
        let s = stats(&dir).unwrap();
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].name, "oscillating");
        assert_eq!(s.buckets[0].specimens, 1);
        assert_eq!(s.buckets[1].unreadable, 1);
        assert_eq!(s.buckets[1].kinds.get("confed"), Some(&1));
        let shown = s.to_string();
        assert!(shown.contains("oscillating"), "{shown}");
        let _ = fs::remove_dir_all(&dir);
    }
}
