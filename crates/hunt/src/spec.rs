//! The plain-data scenario specification behind the `.ibgp` format.
//!
//! A [`ScenarioSpec`] is the *serializable* description of one experiment:
//! routers, physical links with IGP costs, one of three session-graph
//! kinds (route reflection, confederation, reflection hierarchy), the
//! protocol to classify under, and the injected exit paths. It is plain
//! old data — `Eq`, order-preserving, no interning — so the printer and
//! parser in [`crate::format`] can guarantee an exact round trip, and the
//! minimizer in [`crate::minimize`] can edit it structurally.
//!
//! [`ScenarioSpec::build`] validates and lowers a spec into the runnable
//! engine inputs ([`Built`]); every structural error of the underlying
//! topology crates surfaces as a [`SpecError`].

use ibgp_confed::{ConfedMode, ConfedTopology, SubAsId};
use ibgp_hierarchy::{ClusterSpec, HierMode, HierTopology, Member};
use ibgp_proto::variants::ProtocolConfig;
use ibgp_proto::{ProtocolVariant, SelectionPolicy};
use ibgp_topology::{PhysicalGraph, Topology, TopologyBuilder, TopologyError};
use ibgp_types::{AsId, ExitPath, ExitPathId, ExitPathRef, IgpCost, LocalPref, Med, RouterId};
use std::fmt;
use std::sync::Arc;

/// One injected E-BGP exit path, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExitSpec {
    /// Exit-path identity (unique within the spec).
    pub id: u32,
    /// The exit-point router.
    pub at: u32,
    /// The neighboring AS the route was learned from (`nextAS`).
    pub next_as: u32,
    /// AS-path length (synthetic path through `next_as`).
    pub len: u32,
    /// MED value.
    pub med: u32,
    /// LOCAL-PREF (100 is the conventional default).
    pub pref: u32,
    /// Exit cost (cost of the exit-point → next-hop link).
    pub cost: u64,
}

impl ExitSpec {
    /// An exit with conventional defaults: path length 1, MED 0,
    /// LOCAL-PREF 100, exit cost 0.
    pub fn new(id: u32, at: u32, next_as: u32) -> Self {
        Self {
            id,
            at,
            next_as,
            len: 1,
            med: 0,
            pref: 100,
            cost: 0,
        }
    }

    /// Same exit with the given MED.
    pub fn med(mut self, med: u32) -> Self {
        self.med = med;
        self
    }

    fn to_exit_path(self) -> ExitPathRef {
        Arc::new(
            ExitPath::builder(ExitPathId::new(self.id))
                .via_with_length(AsId::new(self.next_as), self.len.max(1) as usize)
                .med(Med::new(self.med))
                .local_pref(LocalPref::new(self.pref))
                .exit_point(RouterId::new(self.at))
                .exit_cost(IgpCost::new(self.cost))
                .build_unchecked(),
        )
    }
}

/// Route-reflection session structure (the paper's §4 model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReflectionSpec {
    /// Fully meshed I-BGP (ignores `clusters`).
    pub full_mesh: bool,
    /// `(reflectors, clients)` per cluster, in declaration order.
    pub clusters: Vec<(Vec<u32>, Vec<u32>)>,
    /// Extra intra-cluster client–client sessions.
    pub client_sessions: Vec<(u32, u32)>,
    /// The protocol variant to classify under.
    pub variant: ProtocolVariant,
    /// Classify with the message-level reflection mechanics
    /// (ORIGINATOR_ID / CLUSTER_LIST stamping, cluster-loop drop, SSLD,
    /// and the reflect-to-whom matrix) instead of the paper's `Transfer`
    /// predicate. Serialized as a `loop-prevention` directive.
    pub loop_prevention: bool,
}

/// Confederation session structure (member sub-ASes + confed-E-BGP).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfedSpec {
    /// Router members of each sub-AS, indexed by sub-AS id.
    pub sub_as: Vec<Vec<u32>>,
    /// Inter-sub-AS confed-E-BGP sessions.
    pub confed_links: Vec<(u32, u32)>,
    /// Advertisement mode.
    pub mode: ConfedMode,
}

/// Nested reflection hierarchy (cluster tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierSpec {
    /// The top-level cluster forest.
    pub top: Vec<ClusterSpec>,
    /// Advertisement mode.
    pub mode: HierMode,
}

/// The session-graph kind of a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecKind {
    /// Flat route reflection (or full mesh).
    Reflection(ReflectionSpec),
    /// Confederation of sub-ASes.
    Confed(ConfedSpec),
    /// Nested reflection hierarchy.
    Hierarchy(HierSpec),
}

impl SpecKind {
    /// The kind keyword used by the on-disk format.
    pub fn keyword(&self) -> &'static str {
        match self {
            SpecKind::Reflection(_) => "reflection",
            SpecKind::Confed(_) => "confed",
            SpecKind::Hierarchy(_) => "hierarchy",
        }
    }
}

/// A complete, serializable scenario description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Free-form identifier (no whitespace), e.g. `fig1a` or
    /// `hunt-confed-s42`.
    pub name: String,
    /// Number of routers (`0..n`).
    pub routers: usize,
    /// Undirected physical links `(u, v, igp_cost)`, in declaration order.
    pub links: Vec<(u32, u32, u64)>,
    /// The session structure and protocol.
    pub kind: SpecKind,
    /// The injected exit paths, in declaration order.
    pub exits: Vec<ExitSpec>,
}

/// A spec lowered into runnable engine inputs.
#[derive(Debug, Clone)]
pub enum Built {
    /// Flat route reflection: classified through the unified
    /// `ibgp_analysis::explore`/`classify` path.
    Reflection {
        /// The validated topology.
        topology: Topology,
        /// Variant + the paper's selection policy.
        config: ProtocolConfig,
        /// The exit paths.
        exits: Vec<ExitPathRef>,
    },
    /// Confederation: classified through `ibgp_confed::explore_confed`.
    Confed {
        /// The validated confederation.
        topology: ConfedTopology,
        /// Advertisement mode.
        mode: ConfedMode,
        /// The exit paths.
        exits: Vec<ExitPathRef>,
    },
    /// Hierarchy: classified through `ibgp_hierarchy::explore_hier`.
    Hierarchy {
        /// The validated cluster tree.
        topology: HierTopology,
        /// Advertisement mode.
        mode: HierMode,
        /// The exit paths.
        exits: Vec<ExitPathRef>,
    },
}

/// Errors validating or lowering a [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The underlying topology failed validation.
    Topology(TopologyError),
    /// An exit path's exit point is not a router of the topology.
    ExitOutOfRange {
        /// The offending exit id.
        id: u32,
        /// Its out-of-range exit point.
        at: u32,
    },
    /// Two exit paths share an id.
    DuplicateExitId(u32),
    /// The spec has no routers.
    NoRouters,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Topology(e) => write!(f, "topology error: {e}"),
            SpecError::ExitOutOfRange { id, at } => {
                write!(f, "exit p{id} has out-of-range exit point r{at}")
            }
            SpecError::DuplicateExitId(id) => write!(f, "duplicate exit id p{id}"),
            SpecError::NoRouters => write!(f, "scenario has no routers"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TopologyError> for SpecError {
    fn from(e: TopologyError) -> Self {
        SpecError::Topology(e)
    }
}

impl ScenarioSpec {
    /// Validate this spec and lower it into runnable engine inputs.
    pub fn build(&self) -> Result<Built, SpecError> {
        if self.routers == 0 {
            return Err(SpecError::NoRouters);
        }
        let mut seen = std::collections::HashSet::new();
        for e in &self.exits {
            if e.at as usize >= self.routers {
                return Err(SpecError::ExitOutOfRange { id: e.id, at: e.at });
            }
            if !seen.insert(e.id) {
                return Err(SpecError::DuplicateExitId(e.id));
            }
        }
        let exits: Vec<ExitPathRef> = self.exits.iter().map(|e| e.to_exit_path()).collect();
        match &self.kind {
            SpecKind::Reflection(r) => {
                let mut b = TopologyBuilder::new(self.routers);
                for &(u, v, c) in &self.links {
                    b = b.link(u, v, c);
                }
                if r.full_mesh {
                    b = b.full_mesh();
                } else {
                    for (rs, cs) in &r.clusters {
                        b = b.cluster(rs.iter().copied(), cs.iter().copied());
                    }
                }
                for &(u, v) in &r.client_sessions {
                    b = b.client_session(u, v);
                }
                Ok(Built::Reflection {
                    topology: b.build()?,
                    config: ProtocolConfig {
                        variant: r.variant,
                        policy: SelectionPolicy::PAPER,
                    },
                    exits,
                })
            }
            SpecKind::Confed(c) => {
                let physical = self.physical()?;
                let mut member = vec![None; self.routers];
                for (sid, routers) in c.sub_as.iter().enumerate() {
                    for &u in routers {
                        if u as usize >= self.routers {
                            return Err(TopologyError::NodeOutOfRange {
                                node: RouterId::new(u),
                                len: self.routers,
                            }
                            .into());
                        }
                        if member[u as usize].is_some() {
                            return Err(
                                TopologyError::NodeInMultipleClusters(RouterId::new(u)).into()
                            );
                        }
                        member[u as usize] = Some(SubAsId(sid as u32));
                    }
                }
                let mut resolved = Vec::with_capacity(self.routers);
                for (i, m) in member.into_iter().enumerate() {
                    match m {
                        Some(s) => resolved.push(s),
                        None => {
                            return Err(
                                TopologyError::NodeUnclustered(RouterId::new(i as u32)).into()
                            )
                        }
                    }
                }
                let confed_links = c
                    .confed_links
                    .iter()
                    .map(|&(u, v)| (RouterId::new(u), RouterId::new(v)))
                    .collect();
                Ok(Built::Confed {
                    topology: ConfedTopology::new(physical, resolved, confed_links)?,
                    mode: c.mode,
                    exits,
                })
            }
            SpecKind::Hierarchy(h) => {
                let physical = self.physical()?;
                Ok(Built::Hierarchy {
                    topology: HierTopology::new(physical, h.top.clone())?,
                    mode: h.mode,
                    exits,
                })
            }
        }
    }

    fn physical(&self) -> Result<PhysicalGraph, SpecError> {
        let mut g = PhysicalGraph::new(self.routers);
        for &(u, v, c) in &self.links {
            g.add_link(RouterId::new(u), RouterId::new(v), IgpCost::new(c))?;
        }
        Ok(g)
    }

    /// The protocol label shown for this spec
    /// (`standard|walton|modified` for reflection, with a
    /// `+loop-prevention` suffix when the reflection mechanics are on;
    /// `single-best|set-advertisement` for confed and hierarchy). The
    /// on-disk format stores the bare variant plus a separate
    /// `loop-prevention` directive.
    pub fn protocol_label(&self) -> String {
        match &self.kind {
            SpecKind::Reflection(r) if r.loop_prevention => {
                format!("{}+loop-prevention", r.variant)
            }
            SpecKind::Reflection(r) => r.variant.to_string(),
            SpecKind::Confed(c) => c.mode.to_string(),
            SpecKind::Hierarchy(h) => h.mode.to_string(),
        }
    }

    /// Convert a catalog [`ibgp_scenarios::Scenario`] (a paper figure or
    /// a random reflection configuration) into a spec. The conversion is
    /// faithful for every scenario the catalog produces: synthetic
    /// AS paths, per-exit MED/LOCAL-PREF/exit-cost, cluster roles, extra
    /// client sessions, and full-mesh I-BGP all survive.
    pub fn from_scenario(s: &ibgp_scenarios::Scenario, variant: ProtocolVariant) -> ScenarioSpec {
        let topo = &s.topology;
        let ibgp = topo.ibgp();
        let links = topo
            .physical()
            .links()
            .map(|(u, v, c)| (u.raw(), v.raw(), c.raw()))
            .collect();
        // Full mesh iff every router is a reflector in a singleton cluster.
        let full_mesh = ibgp.clusters().len() == topo.len()
            && ibgp
                .clusters()
                .iter()
                .all(|c| c.reflectors().len() == 1 && c.clients().is_empty());
        let clusters = if full_mesh {
            Vec::new()
        } else {
            ibgp.clusters()
                .iter()
                .map(|c| {
                    (
                        c.reflectors().iter().map(|r| r.raw()).collect(),
                        c.clients().iter().map(|r| r.raw()).collect(),
                    )
                })
                .collect()
        };
        let client_sessions = ibgp
            .client_sessions()
            .iter()
            .map(|&(u, v)| (u.raw(), v.raw()))
            .collect();
        let exits = s
            .exits
            .iter()
            .map(|p| ExitSpec {
                id: p.id().raw(),
                at: p.exit_point().raw(),
                next_as: p.next_as().raw(),
                len: p.as_path_length() as u32,
                med: p.med().raw(),
                pref: p.local_pref().raw(),
                cost: p.exit_cost().raw(),
            })
            .collect();
        ScenarioSpec {
            name: s.name.to_string(),
            routers: topo.len(),
            links,
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh,
                clusters,
                client_sessions,
                variant,
                loop_prevention: false,
            }),
            exits,
        }
    }
}

/// Count the routers mentioned by a hierarchy cluster tree (for editors
/// that need to walk it).
pub fn hier_members(spec: &ClusterSpec, out: &mut Vec<u32>) {
    out.extend(spec.reflectors.iter().copied());
    for m in &spec.members {
        match m {
            Member::Router(r) => out.push(*r),
            Member::Cluster(c) => hier_members(c, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disagree_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "disagree".into(),
            routers: 4,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
                client_sessions: vec![],
                variant: ProtocolVariant::Standard,
                loop_prevention: false,
            }),
            exits: vec![ExitSpec::new(1, 2, 1), ExitSpec::new(2, 3, 1)],
        }
    }

    #[test]
    fn reflection_spec_builds() {
        let built = disagree_spec().build().unwrap();
        match built {
            Built::Reflection {
                topology, exits, ..
            } => {
                assert_eq!(topology.len(), 4);
                assert_eq!(exits.len(), 2);
                assert!(topology.ibgp().is_reflector(RouterId::new(0)));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn confed_spec_builds() {
        let spec = ScenarioSpec {
            name: "c".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2, 3]],
                confed_links: vec![(1, 2)],
                mode: ConfedMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 0, 1)],
        };
        match spec.build().unwrap() {
            Built::Confed { topology, .. } => {
                assert_eq!(topology.len(), 4);
                assert!(topology.is_confed_link(RouterId::new(1), RouterId::new(2)));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn hierarchy_spec_builds() {
        let spec = ScenarioSpec {
            name: "h".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Hierarchy(HierSpec {
                top: vec![ClusterSpec {
                    reflectors: vec![0],
                    members: vec![
                        Member::Cluster(ClusterSpec::flat(1, [2])),
                        Member::Router(3),
                    ],
                }],
                mode: HierMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 2, 1)],
        };
        match spec.build().unwrap() {
            Built::Hierarchy { topology, .. } => assert_eq!(topology.depth(), 2),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn validation_errors_surface() {
        let mut s = disagree_spec();
        s.exits[1].at = 99;
        assert_eq!(
            s.build().unwrap_err(),
            SpecError::ExitOutOfRange { id: 2, at: 99 }
        );
        let mut s = disagree_spec();
        s.exits[1].id = 1;
        assert_eq!(s.build().unwrap_err(), SpecError::DuplicateExitId(1));
        let mut s = disagree_spec();
        s.links.clear();
        assert_eq!(
            s.build().unwrap_err(),
            SpecError::Topology(TopologyError::Disconnected)
        );
    }

    #[test]
    fn from_scenario_round_trips_fig1a_behaviour() {
        let fig = ibgp_scenarios::fig1a::scenario();
        let spec = ScenarioSpec::from_scenario(&fig, ProtocolVariant::Standard);
        assert_eq!(spec.routers, fig.topology.len());
        assert_eq!(spec.exits.len(), fig.exits.len());
        match spec.build().unwrap() {
            Built::Reflection {
                topology, exits, ..
            } => {
                // The rebuilt topology has the identical session graph and
                // IGP metric, and the rebuilt exits are attribute-identical.
                for u in fig.topology.routers() {
                    for v in fig.topology.routers() {
                        assert_eq!(
                            topology.ibgp().is_session(u, v),
                            fig.topology.ibgp().is_session(u, v)
                        );
                        assert_eq!(topology.igp_cost(u, v), fig.topology.igp_cost(u, v));
                    }
                }
                for (a, b) in exits.iter().zip(fig.exits.iter()) {
                    assert_eq!(a.id(), b.id());
                    assert_eq!(a.exit_point(), b.exit_point());
                    assert_eq!(a.next_as(), b.next_as());
                    assert_eq!(a.med(), b.med());
                    assert_eq!(a.local_pref(), b.local_pref());
                    assert_eq!(a.as_path_length(), b.as_path_length());
                    assert_eq!(a.exit_cost(), b.exit_cost());
                }
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn from_scenario_detects_full_mesh() {
        let fig = ibgp_scenarios::fig1b::scenario();
        let spec = ScenarioSpec::from_scenario(&fig, ProtocolVariant::Standard);
        match &spec.kind {
            SpecKind::Reflection(r) => assert!(r.full_mesh),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
