//! The `.ibgp` on-disk scenario format: a stable, hand-rolled plain-text
//! encoding of [`ScenarioSpec`] with a deterministic printer and a
//! line-oriented parser that round-trip exactly: for every valid spec,
//! `parse(&print(&s)) == Ok(s)`.
//!
//! The format is deliberately independent of any serialization framework
//! so corpus files stay readable, diffable, and stable across refactors
//! of the in-memory types. Grammar (one directive per line, `#` starts a
//! comment, blank lines ignored):
//!
//! ```text
//! ibgp 1                          # format version, must be first
//! name fig1a                      # rest of line (no newlines)
//! kind reflection                 # reflection | confed | hierarchy
//! protocol standard               # standard|walton|modified (reflection)
//!                                 # single-best|set-advertisement (confed, hierarchy)
//! routers 5
//! link U V COST                   # undirected physical link, repeated
//! loop-prevention                 # reflection only: message-level
//!                                 # ORIGINATOR_ID/CLUSTER_LIST/SSLD mechanics
//! mesh                            # reflection only: fully meshed I-BGP
//! cluster r R... c C...           # reflection: one line per cluster
//! session U V                     # reflection: extra client-client session
//! subas R...                      # confed: members of the next sub-AS id
//! clink U V                       # confed: confed-E-BGP session
//! hcluster ( r R... m M... )      # hierarchy: top-level cluster tree;
//!                                 # a member M is a router id or a nested ( ... )
//! exit ID at R as A len L med M pref P cost C
//! ```
//!
//! Router BGP identifiers are always the router indices (no scenario in
//! the corpus overrides them); declaration order of links, clusters,
//! sessions, and exits is preserved verbatim.

use crate::spec::{ConfedSpec, ExitSpec, HierSpec, ReflectionSpec, ScenarioSpec, SpecKind};
use ibgp_confed::ConfedMode;
use ibgp_hierarchy::{ClusterSpec, HierMode, Member};
use ibgp_proto::ProtocolVariant;
use std::fmt::Write as _;

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// A parse failure, with the 1-based line it occurred on (0 for
/// end-of-input / document-level errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based source line (0 = document level).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FormatError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError {
        line,
        message: message.into(),
    })
}

/// Print a spec in the canonical `.ibgp` encoding.
pub fn print(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ibgp {FORMAT_VERSION}");
    let _ = writeln!(out, "name {}", spec.name);
    let _ = writeln!(out, "kind {}", spec.kind.keyword());
    // The `protocol` line stores the bare variant; loop prevention is a
    // separate directive (so `protocol_label`'s display suffix never
    // leaks into the on-disk encoding).
    let protocol = match &spec.kind {
        SpecKind::Reflection(r) => r.variant.to_string(),
        SpecKind::Confed(c) => c.mode.to_string(),
        SpecKind::Hierarchy(h) => h.mode.to_string(),
    };
    let _ = writeln!(out, "protocol {protocol}");
    let _ = writeln!(out, "routers {}", spec.routers);
    for &(u, v, c) in &spec.links {
        let _ = writeln!(out, "link {u} {v} {c}");
    }
    match &spec.kind {
        SpecKind::Reflection(r) => {
            if r.loop_prevention {
                let _ = writeln!(out, "loop-prevention");
            }
            if r.full_mesh {
                let _ = writeln!(out, "mesh");
            } else {
                for (rs, cs) in &r.clusters {
                    let _ = write!(out, "cluster r");
                    for x in rs {
                        let _ = write!(out, " {x}");
                    }
                    let _ = write!(out, " c");
                    for x in cs {
                        let _ = write!(out, " {x}");
                    }
                    out.push('\n');
                }
            }
            for &(u, v) in &r.client_sessions {
                let _ = writeln!(out, "session {u} {v}");
            }
        }
        SpecKind::Confed(c) => {
            for members in &c.sub_as {
                let _ = write!(out, "subas");
                for x in members {
                    let _ = write!(out, " {x}");
                }
                out.push('\n');
            }
            for &(u, v) in &c.confed_links {
                let _ = writeln!(out, "clink {u} {v}");
            }
        }
        SpecKind::Hierarchy(h) => {
            for top in &h.top {
                let mut line = String::from("hcluster ");
                print_hcluster(top, &mut line);
                let _ = writeln!(out, "{line}");
            }
        }
    }
    for e in &spec.exits {
        let _ = writeln!(
            out,
            "exit {} at {} as {} len {} med {} pref {} cost {}",
            e.id, e.at, e.next_as, e.len, e.med, e.pref, e.cost
        );
    }
    out
}

fn print_hcluster(c: &ClusterSpec, out: &mut String) {
    out.push_str("( r");
    for r in &c.reflectors {
        let _ = write!(out, " {r}");
    }
    out.push_str(" m");
    for m in &c.members {
        match m {
            Member::Router(r) => {
                let _ = write!(out, " {r}");
            }
            Member::Cluster(sub) => {
                out.push(' ');
                print_hcluster(sub, out);
            }
        }
    }
    out.push_str(" )");
}

/// What a `kind` line declares, before its structure lines arrive.
enum PendingKind {
    Reflection,
    Confed,
    Hierarchy,
}

/// Parse the `.ibgp` encoding back into a [`ScenarioSpec`].
///
/// The parser is strict: unknown directives, missing required headers,
/// structure lines that contradict the declared `kind`, and malformed
/// numbers are all errors (with line numbers).
pub fn parse(input: &str) -> Result<ScenarioSpec, FormatError> {
    let mut name: Option<String> = None;
    let mut kind: Option<PendingKind> = None;
    let mut protocol: Option<String> = None;
    let mut routers: Option<usize> = None;
    let mut links: Vec<(u32, u32, u64)> = Vec::new();
    let mut full_mesh = false;
    let mut loop_prevention = false;
    let mut clusters: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    let mut client_sessions: Vec<(u32, u32)> = Vec::new();
    let mut sub_as: Vec<Vec<u32>> = Vec::new();
    let mut confed_links: Vec<(u32, u32)> = Vec::new();
    let mut hclusters: Vec<ClusterSpec> = Vec::new();
    let mut exits: Vec<ExitSpec> = Vec::new();
    let mut saw_version = false;
    // Router references by source line, checked against `routers` once
    // the whole document is read (directive order is not significant, so
    // a reference may legally precede the `routers` line).
    let mut router_refs: Vec<(usize, u32)> = Vec::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let ln = idx + 1;
        let line = match raw_line.find('#') {
            Some(p) => &raw_line[..p],
            None => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let directive = toks.next().expect("non-empty line has a token");
        if !saw_version {
            if directive != "ibgp" {
                return err(ln, "file must start with an `ibgp <version>` line");
            }
            let v: u32 = num(toks.next(), ln, "format version")?;
            if v != FORMAT_VERSION {
                return err(ln, format!("unsupported format version {v}"));
            }
            saw_version = true;
            continue;
        }
        match directive {
            "name" => {
                let rest = line["name".len()..].trim();
                if rest.is_empty() {
                    return err(ln, "`name` needs a value");
                }
                if name.replace(rest.to_string()).is_some() {
                    return err(ln, "duplicate `name` directive");
                }
            }
            "kind" => {
                if kind.is_some() {
                    return err(ln, "duplicate `kind` directive");
                }
                kind = Some(match toks.next() {
                    Some("reflection") => PendingKind::Reflection,
                    Some("confed") => PendingKind::Confed,
                    Some("hierarchy") => PendingKind::Hierarchy,
                    Some(other) => return err(ln, format!("unknown kind `{other}`")),
                    None => return err(ln, "`kind` needs a value"),
                });
            }
            "protocol" => match toks.next() {
                Some(p) => {
                    if protocol.replace(p.to_string()).is_some() {
                        return err(ln, "duplicate `protocol` directive");
                    }
                }
                None => return err(ln, "`protocol` needs a value"),
            },
            "routers" => {
                if routers
                    .replace(num(toks.next(), ln, "router count")?)
                    .is_some()
                {
                    return err(ln, "duplicate `routers` directive");
                }
            }
            "link" => {
                let u = num(toks.next(), ln, "link endpoint")?;
                let v = num(toks.next(), ln, "link endpoint")?;
                let c = num(toks.next(), ln, "link cost")?;
                router_refs.push((ln, u));
                router_refs.push((ln, v));
                links.push((u, v, c));
            }
            "mesh" => {
                require_kind(&kind, "mesh", &PendingKind::Reflection, ln)?;
                if full_mesh {
                    return err(ln, "duplicate `mesh` directive");
                }
                full_mesh = true;
            }
            "loop-prevention" => {
                require_kind(&kind, "loop-prevention", &PendingKind::Reflection, ln)?;
                if loop_prevention {
                    return err(ln, "duplicate `loop-prevention` directive");
                }
                loop_prevention = true;
            }
            "cluster" => {
                require_kind(&kind, "cluster", &PendingKind::Reflection, ln)?;
                let (rs, cs) = parse_cluster_line(&mut toks, ln)?;
                router_refs.extend(rs.iter().chain(cs.iter()).map(|&x| (ln, x)));
                clusters.push((rs, cs));
            }
            "session" => {
                require_kind(&kind, "session", &PendingKind::Reflection, ln)?;
                let u = num(toks.next(), ln, "session endpoint")?;
                let v = num(toks.next(), ln, "session endpoint")?;
                router_refs.push((ln, u));
                router_refs.push((ln, v));
                client_sessions.push((u, v));
            }
            "subas" => {
                require_kind(&kind, "subas", &PendingKind::Confed, ln)?;
                let members: Result<Vec<u32>, _> = toks
                    .by_ref()
                    .map(|t| num(Some(t), ln, "sub-AS member"))
                    .collect();
                let members = members?;
                router_refs.extend(members.iter().map(|&x| (ln, x)));
                sub_as.push(members);
            }
            "clink" => {
                require_kind(&kind, "clink", &PendingKind::Confed, ln)?;
                let u = num(toks.next(), ln, "clink endpoint")?;
                let v = num(toks.next(), ln, "clink endpoint")?;
                router_refs.push((ln, u));
                router_refs.push((ln, v));
                confed_links.push((u, v));
            }
            "hcluster" => {
                require_kind(&kind, "hcluster", &PendingKind::Hierarchy, ln)?;
                let tokens: Vec<&str> = toks.by_ref().collect();
                let mut pos = 0;
                let c = parse_hcluster(&tokens, &mut pos, ln)?;
                if pos != tokens.len() {
                    return err(ln, "trailing tokens after hierarchy cluster");
                }
                collect_hcluster_routers(&c, ln, &mut router_refs);
                hclusters.push(c);
            }
            "exit" => {
                let e = parse_exit_line(&mut toks, ln)?;
                router_refs.push((ln, e.at));
                exits.push(e);
            }
            other => return err(ln, format!("unknown directive `{other}`")),
        }
        if let Some(extra) = toks.next() {
            // `name` consumes the rest of the line itself; every other
            // directive must use all its tokens.
            if directive != "name" {
                return err(ln, format!("trailing token `{extra}`"));
            }
        }
    }

    if !saw_version {
        return err(0, "empty document (missing `ibgp <version>` line)");
    }
    let name = name.ok_or_else(|| missing("name"))?;
    let routers = routers.ok_or_else(|| missing("routers"))?;
    let protocol = protocol.ok_or_else(|| missing("protocol"))?;
    for (ln, r) in router_refs {
        if r as usize >= routers {
            return err(
                ln,
                format!("router id {r} out of range (declared `routers {routers}`)"),
            );
        }
    }
    let kind = match kind.ok_or_else(|| missing("kind"))? {
        PendingKind::Reflection => {
            if full_mesh && !clusters.is_empty() {
                return err(0, "`mesh` and `cluster` lines are mutually exclusive");
            }
            SpecKind::Reflection(ReflectionSpec {
                full_mesh,
                clusters,
                client_sessions,
                variant: protocol
                    .parse::<ProtocolVariant>()
                    .map_err(|e| FormatError {
                        line: 0,
                        message: e,
                    })?,
                loop_prevention,
            })
        }
        PendingKind::Confed => SpecKind::Confed(ConfedSpec {
            sub_as,
            confed_links,
            mode: parse_mode(&protocol)
                .map(|single| {
                    if single {
                        ConfedMode::SingleBest
                    } else {
                        ConfedMode::SetAdvertisement
                    }
                })
                .ok_or_else(|| bad_mode(&protocol))?,
        }),
        PendingKind::Hierarchy => SpecKind::Hierarchy(HierSpec {
            top: hclusters,
            mode: parse_mode(&protocol)
                .map(|single| {
                    if single {
                        HierMode::SingleBest
                    } else {
                        HierMode::SetAdvertisement
                    }
                })
                .ok_or_else(|| bad_mode(&protocol))?,
        }),
    };
    Ok(ScenarioSpec {
        name,
        routers,
        links,
        kind,
        exits,
    })
}

/// Every router id an `hcluster` tree references, attributed to its line.
fn collect_hcluster_routers(c: &ClusterSpec, ln: usize, out: &mut Vec<(usize, u32)>) {
    out.extend(c.reflectors.iter().map(|&r| (ln, r)));
    for m in &c.members {
        match m {
            Member::Router(r) => out.push((ln, *r)),
            Member::Cluster(sub) => collect_hcluster_routers(sub, ln, out),
        }
    }
}

fn missing(field: &str) -> FormatError {
    FormatError {
        line: 0,
        message: format!("missing `{field}` directive"),
    }
}

fn bad_mode(p: &str) -> FormatError {
    FormatError {
        line: 0,
        message: format!("unknown protocol `{p}` (expected single-best|set-advertisement)"),
    }
}

/// `Some(true)` for single-best, `Some(false)` for set-advertisement.
fn parse_mode(p: &str) -> Option<bool> {
    match p {
        "single-best" => Some(true),
        "set-advertisement" => Some(false),
        _ => None,
    }
}

fn require_kind(
    kind: &Option<PendingKind>,
    directive: &str,
    want: &PendingKind,
    ln: usize,
) -> Result<(), FormatError> {
    let ok = matches!(
        (kind, want),
        (Some(PendingKind::Reflection), PendingKind::Reflection)
            | (Some(PendingKind::Confed), PendingKind::Confed)
            | (Some(PendingKind::Hierarchy), PendingKind::Hierarchy)
    );
    if ok {
        Ok(())
    } else {
        err(
            ln,
            format!("`{directive}` requires a preceding matching `kind` line"),
        )
    }
}

fn num<T: std::str::FromStr>(tok: Option<&str>, ln: usize, what: &str) -> Result<T, FormatError> {
    match tok {
        Some(t) => t.parse().map_err(|_| FormatError {
            line: ln,
            message: format!("invalid {what} `{t}`"),
        }),
        None => err(ln, format!("missing {what}")),
    }
}

fn parse_cluster_line<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    ln: usize,
) -> Result<(Vec<u32>, Vec<u32>), FormatError> {
    match toks.next() {
        Some("r") => {}
        _ => return err(ln, "`cluster` line must start with `r`"),
    }
    let mut reflectors = Vec::new();
    let mut clients = Vec::new();
    let mut in_clients = false;
    for t in toks {
        if t == "c" {
            if in_clients {
                return err(ln, "duplicate `c` marker in cluster line");
            }
            in_clients = true;
        } else {
            let v = num(Some(t), ln, "cluster member")?;
            if in_clients {
                clients.push(v);
            } else {
                reflectors.push(v);
            }
        }
    }
    if !in_clients {
        return err(ln, "cluster line missing `c` marker");
    }
    Ok((reflectors, clients))
}

fn parse_hcluster(tokens: &[&str], pos: &mut usize, ln: usize) -> Result<ClusterSpec, FormatError> {
    if tokens.get(*pos) != Some(&"(") {
        return err(ln, "expected `(` opening a hierarchy cluster");
    }
    *pos += 1;
    if tokens.get(*pos) != Some(&"r") {
        return err(ln, "expected `r` after `(`");
    }
    *pos += 1;
    let mut reflectors = Vec::new();
    while let Some(t) = tokens.get(*pos) {
        if *t == "m" {
            break;
        }
        reflectors.push(num(Some(t), ln, "reflector id")?);
        *pos += 1;
    }
    if tokens.get(*pos) != Some(&"m") {
        return err(ln, "expected `m` after reflector list");
    }
    *pos += 1;
    let mut members = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(&")") => {
                *pos += 1;
                return Ok(ClusterSpec {
                    reflectors,
                    members,
                });
            }
            Some(&"(") => members.push(Member::Cluster(parse_hcluster(tokens, pos, ln)?)),
            Some(t) => {
                members.push(Member::Router(num(Some(t), ln, "member router id")?));
                *pos += 1;
            }
            None => return err(ln, "unterminated hierarchy cluster (missing `)`)"),
        }
    }
}

fn parse_exit_line<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    ln: usize,
) -> Result<ExitSpec, FormatError> {
    let id = num(toks.next(), ln, "exit id")?;
    let mut e = ExitSpec::new(id, 0, 0);
    for (key, field) in [
        ("at", "exit point"),
        ("as", "neighbor AS"),
        ("len", "path length"),
        ("med", "MED"),
        ("pref", "LOCAL-PREF"),
        ("cost", "exit cost"),
    ] {
        match toks.next() {
            Some(k) if k == key => {}
            _ => return err(ln, format!("exit line missing `{key}` field")),
        }
        match key {
            "at" => e.at = num(toks.next(), ln, field)?,
            "as" => e.next_as = num(toks.next(), ln, field)?,
            "len" => e.len = num(toks.next(), ln, field)?,
            "med" => e.med = num(toks.next(), ln, field)?,
            "pref" => e.pref = num(toks.next(), ln, field)?,
            "cost" => e.cost = num(toks.next(), ln, field)?,
            _ => unreachable!(),
        }
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecKind;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "sample".into(),
            routers: 4,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
                client_sessions: vec![(2, 3)],
                variant: ProtocolVariant::Standard,
                loop_prevention: false,
            }),
            exits: vec![
                ExitSpec::new(1, 2, 1).med(5),
                ExitSpec {
                    id: 2,
                    at: 3,
                    next_as: 2,
                    len: 3,
                    med: 0,
                    pref: 200,
                    cost: 4,
                },
            ],
        }
    }

    #[test]
    fn reflection_round_trip() {
        let s = sample();
        let text = print(&s);
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn full_mesh_round_trip() {
        let mut s = sample();
        s.kind = SpecKind::Reflection(ReflectionSpec {
            full_mesh: true,
            clusters: vec![],
            client_sessions: vec![],
            variant: ProtocolVariant::Modified,
            loop_prevention: false,
        });
        let text = print(&s);
        assert!(text.contains("mesh\n"));
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn confed_round_trip() {
        let s = ScenarioSpec {
            name: "confed-x".into(),
            routers: 5,
            links: vec![(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 4, 4)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2], vec![3, 4]],
                confed_links: vec![(1, 2), (2, 3)],
                mode: ConfedMode::SetAdvertisement,
            }),
            exits: vec![ExitSpec::new(1, 0, 1), ExitSpec::new(2, 4, 1)],
        };
        assert_eq!(parse(&print(&s)).unwrap(), s);
    }

    #[test]
    fn hierarchy_round_trip() {
        let s = ScenarioSpec {
            name: "hier-x".into(),
            routers: 5,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)],
            kind: SpecKind::Hierarchy(HierSpec {
                top: vec![
                    ClusterSpec {
                        reflectors: vec![0],
                        members: vec![
                            Member::Cluster(ClusterSpec::flat(1, [2])),
                            Member::Router(3),
                        ],
                    },
                    ClusterSpec::flat(4, []),
                ],
                mode: HierMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 2, 1)],
        };
        let text = print(&s);
        assert_eq!(parse(&text).unwrap(), s, "\n{text}");
    }

    /// `loop-prevention` round-trips as its own directive; the
    /// `protocol` line stays the bare variant even though the display
    /// label grows a suffix.
    #[test]
    fn loop_prevention_round_trip() {
        let mut s = sample();
        match &mut s.kind {
            SpecKind::Reflection(r) => r.loop_prevention = true,
            _ => unreachable!(),
        }
        let text = print(&s);
        assert!(text.contains("\nloop-prevention\n"), "{text}");
        assert!(text.contains("\nprotocol standard\n"), "{text}");
        assert_eq!(parse(&text).unwrap(), s);
        assert_eq!(s.protocol_label(), "standard+loop-prevention");
    }

    /// `loop-prevention` is a reflection-only directive.
    #[test]
    fn loop_prevention_requires_reflection_kind() {
        let e = parse("ibgp 1\nname x\nkind confed\nloop-prevention\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("matching `kind`"), "{e}");
        let e = parse("ibgp 1\nname x\nloop-prevention\n").unwrap_err();
        assert!(e.to_string().contains("matching `kind`"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = sample();
        let text = print(&s);
        let commented: String = text
            .lines()
            .map(|l| format!("{l}   # trailing comment\n\n"))
            .collect();
        let full = format!("# leading comment\n\n{commented}");
        // The version line must still come first among directives.
        let full = full.replacen("# leading comment\n\n", "", 1);
        let full = format!("# head\n\n{full}");
        assert_eq!(parse(&full).unwrap(), s);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("bogus 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse("ibgp 1\nname x\nkind reflection\nwat 3\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("wat"), "{e}");
        let e = parse("ibgp 2\n").unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        let e = parse("ibgp 1\nname x\nkind confed\ncluster r 0 c\n").unwrap_err();
        assert!(e.to_string().contains("matching `kind`"), "{e}");
        let e = parse("ibgp 1\nname x\nkind reflection\nprotocol standard\n").unwrap_err();
        assert!(e.to_string().contains("routers"), "{e}");
        let e = parse("ibgp 1\nname x\nkind reflection\nprotocol nope\nrouters 1\n").unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
        let e = parse("ibgp 1\nlink 0 1 x\n").unwrap_err();
        assert!(e.to_string().contains("cost"), "{e}");
    }

    /// The strict-parser battery: every malformed document is rejected
    /// with the offending line, never silently accepted or papered over
    /// by last-one-wins semantics.
    #[test]
    fn strict_parser_rejects_duplicates_and_out_of_range_ids() {
        let head = "ibgp 1\nname x\nkind reflection\nprotocol standard\nrouters 2\n";
        let cases: &[(String, usize, &str)] = &[
            // Duplicate header directives.
            (format!("{head}name y\n"), 6, "duplicate `name`"),
            (format!("{head}kind reflection\n"), 6, "duplicate `kind`"),
            (format!("{head}protocol walton\n"), 6, "duplicate `protocol`"),
            (format!("{head}routers 3\n"), 6, "duplicate `routers`"),
            (format!("{head}mesh\nmesh\n"), 7, "duplicate `mesh`"),
            (
                format!("{head}loop-prevention\nloop-prevention\n"),
                7,
                "duplicate `loop-prevention`",
            ),
            // Out-of-range router references, per directive. The check
            // runs after the whole document is read, so it fires even
            // when the reference precedes the `routers` line.
            (format!("{head}link 0 2 1\n"), 6, "out of range"),
            (format!("{head}cluster r 0 c 5\n"), 6, "out of range"),
            (format!("{head}session 1 2\n"), 6, "out of range"),
            (
                format!("{head}exit 1 at 9 as 1 len 1 med 0 pref 100 cost 0\n"),
                6,
                "out of range",
            ),
            (
                "ibgp 1\nname x\nkind reflection\nlink 0 7 1\nprotocol standard\nrouters 2\n"
                    .to_string(),
                4,
                "out of range",
            ),
            (
                "ibgp 1\nname x\nkind confed\nprotocol single-best\nrouters 2\nsubas 0 4\n"
                    .to_string(),
                6,
                "out of range",
            ),
            (
                "ibgp 1\nname x\nkind confed\nprotocol single-best\nrouters 2\nclink 0 3\n"
                    .to_string(),
                6,
                "out of range",
            ),
            (
                "ibgp 1\nname x\nkind hierarchy\nprotocol single-best\nrouters 2\nhcluster ( r 0 m 6 )\n"
                    .to_string(),
                6,
                "out of range",
            ),
        ];
        for (text, line, needle) in cases {
            let e = parse(text).expect_err(text);
            assert_eq!(e.line, *line, "{text:?} -> {e}");
            assert!(e.to_string().contains(needle), "{text:?} -> {e}");
        }
        // The error message names both the id and the declared bound.
        let e = parse(&format!("{head}link 0 2 1\n")).unwrap_err();
        assert!(e.to_string().contains("router id 2"), "{e}");
        assert!(e.to_string().contains("`routers 2`"), "{e}");
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let e = parse("ibgp 1\nname x\nkind reflection\nprotocol standard extra\n").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        let e = parse("ibgp 1\nlink 0 1 2 3\n").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn names_may_contain_spaces() {
        let mut s = sample();
        s.name = "two words".into();
        assert_eq!(parse(&print(&s)).unwrap(), s);
    }

    #[test]
    fn exit_line_is_strict_about_field_order() {
        let e =
            parse("ibgp 1\nname x\nkind reflection\nprotocol standard\nrouters 1\ncluster r 0 c\nexit 1 as 1 at 0 len 1 med 0 pref 100 cost 0\n")
                .unwrap_err();
        assert!(e.to_string().contains("`at`"), "{e}");
    }
}
