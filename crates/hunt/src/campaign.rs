//! The seeded hunting campaign driver.
//!
//! [`run_campaign`] generates a fixed budget of random topologies (cycling
//! deterministically through the configured families), classifies each
//! through [`crate::verdict::classify_spec`], and files every
//! oscillating / bistable / inconclusive specimen into the corpus
//! directory, deduplicated by canonical structural signature. Stable
//! topologies are counted but not filed.
//!
//! Determinism: with a fixed seed and budget the produced corpus tree is
//! byte-identical across runs (and machines) — generation derives
//! per-index RNG streams, iteration order is fixed, filenames come from
//! the signature, and no timestamps are written to disk. Wall-clock time
//! appears only in the returned [`CampaignReport`].

use crate::corpus;
use crate::generate::{generate_spec, Family, ALL_FAMILIES};
use crate::signature::{file_stem, signature};
use crate::spec::{SpecError, SpecKind};
use crate::verdict::{classify_spec, HuntOptions};
use ibgp_analysis::OscillationClass;
use ibgp_sim::Metrics;
use std::collections::BTreeSet;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every generated topology derives from it.
    pub seed: u64,
    /// Topologies to generate and classify.
    pub budget: usize,
    /// Families to cycle through (round-robin by index).
    pub families: Vec<Family>,
    /// Search knobs applied to every classification.
    pub options: HuntOptions,
    /// Corpus directory to file specimens into.
    pub out_dir: PathBuf,
}

impl CampaignConfig {
    /// A campaign over all families with default search knobs.
    pub fn new(seed: u64, budget: usize, out_dir: PathBuf) -> Self {
        Self {
            seed,
            budget,
            families: ALL_FAMILIES.to_vec(),
            options: HuntOptions::default(),
            out_dir,
        }
    }
}

/// Per-family verdict tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyYield {
    /// The family.
    pub family: Family,
    /// Topologies generated for it.
    pub generated: usize,
    /// Proven persistent oscillations filed.
    pub oscillating: usize,
    /// Transient (bistable-or-cycling) specimens filed.
    pub bistable: usize,
    /// Cap-hit searches filed as inconclusive.
    pub inconclusive: usize,
    /// Stable topologies (counted, never filed).
    pub stable: usize,
    /// Specimens skipped because an isomorphic one was already filed.
    pub duplicates: usize,
}

impl FamilyYield {
    fn new(family: Family) -> Self {
        Self {
            family,
            generated: 0,
            oscillating: 0,
            bistable: 0,
            inconclusive: 0,
            stable: 0,
            duplicates: 0,
        }
    }
}

/// What a campaign did.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// Topologies generated.
    pub generated: usize,
    /// Specimens newly written to disk.
    pub filed: usize,
    /// Isomorphic duplicates skipped (incl. collisions with prior runs).
    pub duplicates: usize,
    /// Per-family tallies, in configured family order.
    pub yields: Vec<FamilyYield>,
    /// Aggregated search metrics (flat-reflection explorations only; the
    /// confed/hierarchy searches are uninstrumented).
    pub metrics: Metrics,
    /// Wall-clock time the campaign took (not persisted anywhere).
    pub elapsed: Duration,
}

impl CampaignReport {
    /// Specimens filed per generated topology.
    pub fn yield_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.filed as f64 / self.generated as f64
        }
    }
}

/// Errors a campaign can hit.
#[derive(Debug)]
pub enum CampaignError {
    /// Corpus I/O failed.
    Io(io::Error),
    /// A generated spec failed to build — a generator bug, since
    /// generation is supposed to produce only valid specs.
    Spec {
        /// Name of the offending spec.
        name: String,
        /// The underlying validation error.
        error: SpecError,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "{e}"),
            CampaignError::Spec { name, error } => {
                write!(f, "generated spec {name} failed to build: {error}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// The corpus bucket a verdict files under, or `None` for stable.
pub fn bucket_for(class: OscillationClass) -> Option<&'static str> {
    match class {
        OscillationClass::Persistent => Some("oscillating"),
        OscillationClass::Transient => Some("bistable"),
        OscillationClass::Unknown => Some("inconclusive"),
        OscillationClass::Stable => None,
    }
}

/// Run a campaign to completion.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, CampaignError> {
    assert!(
        !cfg.families.is_empty(),
        "campaign needs at least one family"
    );
    let started = std::time::Instant::now();
    let mut seen: BTreeSet<String> = corpus::existing_stems(&cfg.out_dir)?;
    let mut yields: Vec<FamilyYield> = cfg.families.iter().map(|&f| FamilyYield::new(f)).collect();
    let mut metrics = Metrics::default();
    let mut filed = 0usize;
    let mut duplicates = 0usize;
    for index in 0..cfg.budget as u64 {
        let slot = (index as usize) % cfg.families.len();
        let family = cfg.families[slot];
        let mut spec = generate_spec(family, cfg.seed, index);
        // Fold the campaign-wide knob into each reflection spec so the
        // filed `.ibgp` carries a `loop-prevention` directive (the
        // specimen reproduces standalone) and the structural signature
        // separates the two corpora.
        if cfg.options.loop_prevention {
            if let SpecKind::Reflection(r) = &mut spec.kind {
                r.loop_prevention = true;
            }
        }
        let y = &mut yields[slot];
        y.generated += 1;
        let verdict = classify_spec(&spec, &cfg.options).map_err(|error| CampaignError::Spec {
            name: spec.name.clone(),
            error,
        })?;
        if let Some(m) = &verdict.metrics {
            metrics.absorb_campaign(m);
        }
        match verdict.class {
            OscillationClass::Persistent => y.oscillating += 1,
            OscillationClass::Transient => y.bistable += 1,
            OscillationClass::Unknown => y.inconclusive += 1,
            OscillationClass::Stable => y.stable += 1,
        }
        let Some(bucket) = bucket_for(verdict.class) else {
            continue;
        };
        let stem = file_stem(&signature(&spec));
        if !seen.insert(stem) {
            y.duplicates += 1;
            duplicates += 1;
            continue;
        }
        corpus::write_specimen(&cfg.out_dir, bucket, &spec)?;
        filed += 1;
    }
    Ok(CampaignReport {
        seed: cfg.seed,
        generated: cfg.budget,
        filed,
        duplicates,
        yields,
        metrics,
        elapsed: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ibgp-hunt-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn small_campaign_files_specimens_and_tallies_add_up() {
        let dir = tmpdir("small");
        let cfg = CampaignConfig::new(7, 20, dir.clone());
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.generated, 20);
        let total: usize = report
            .yields
            .iter()
            .map(|y| y.oscillating + y.bistable + y.inconclusive + y.stable)
            .sum();
        assert_eq!(total, 20, "every topology got exactly one verdict");
        let on_disk = corpus::existing_stems(&dir).unwrap().len();
        assert_eq!(on_disk, report.filed);
        assert!(report.metrics.states_visited > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rerunning_into_the_same_dir_files_nothing_new() {
        let dir = tmpdir("rerun");
        let cfg = CampaignConfig::new(11, 15, dir.clone());
        let first = run_campaign(&cfg).unwrap();
        let second = run_campaign(&cfg).unwrap();
        assert_eq!(second.filed, 0, "all specimens already filed");
        assert_eq!(second.duplicates, first.filed);
        let _ = fs::remove_dir_all(&dir);
    }
}
