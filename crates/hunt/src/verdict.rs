//! One classification path for every scenario kind.
//!
//! [`classify_spec`] lowers a [`ScenarioSpec`] and classifies it with the
//! engine matching its kind: flat reflection specs go through the unified
//! `ibgp_analysis::classify` / `explore(..., ExploreOptions)` pipeline
//! (cap, worker pool, metrics, all-at-once cycle probe); confederation and
//! hierarchy specs go through their dedicated exhaustive searches, with
//! the same verdict taxonomy derived from the search evidence. The CLI's
//! `classify`, `run`, the campaign driver, and the minimizer all consume
//! the resulting [`Verdict`], so the "inconclusive: cap hit" reasoning
//! lives in exactly one place.

use crate::spec::{Built, ScenarioSpec, SpecError, SpecKind};
use ibgp_analysis::{ExploreOptions, OscillationClass};
use ibgp_confed::explore_confed;
use ibgp_hierarchy::explore_hier;
use ibgp_sim::Metrics;
use ibgp_types::{ExitPathId, SearchBudget, SolverMode, StopReason, VerdictOrigin};
use std::time::Instant;

/// Search knobs shared by every hunt entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HuntOptions {
    /// State cap per exploration.
    pub max_states: usize,
    /// Worker threads for the reflection search (`0`, the default, means
    /// one per hardware thread, sanely capped; confed/hierarchy searches
    /// are single-threaded).
    pub jobs: usize,
    /// Collapse automorphism orbits in the flat-reflection search
    /// (confed/hierarchy searches are uninstrumented and ignore this).
    pub symmetry: bool,
    /// Visited-set byte budget for the reflection search; `None` for
    /// unbounded.
    pub max_bytes: Option<usize>,
    /// Use the flat fixed-width state encoding (default) or the legacy
    /// `StateKey` path in the reflection search. Verdicts are identical
    /// either way (`tests/encoding_golden.rs` pins this on the whole
    /// committed corpus); the switch exists for A/B measurement and the
    /// equivalence suites.
    pub flat: bool,
    /// Prune each frontier state's branches to the invisible compound
    /// ample step in the reflection search (exact partial-order
    /// reduction; confed/hierarchy searches ignore this). Verdicts are
    /// unchanged — only the number of states visited shrinks.
    pub por: bool,
    /// Absolute wall-clock deadline for the search; `None` (the default)
    /// for no deadline. Every search kind honors it, checked at
    /// deterministic points (BFS level boundaries / between expansions).
    pub deadline: Option<Instant>,
    /// Classification backend: reachability search (default) or the
    /// `ibgp-solver` constraint encoding (`Sat`), which enumerates *all*
    /// stable routings without visiting reachable states. Only the
    /// standard-protocol flat-reflection path supports the solver;
    /// other kinds and variants fall back to search.
    pub solver: SolverMode,
    /// Classify reflection specs under the message-level reflection
    /// mechanics (ORIGINATOR_ID / CLUSTER_LIST stamping, cluster-loop
    /// drop, SSLD, the reflect-to-whom matrix) instead of the paper's
    /// `Transfer` predicate. Forces the legacy state encoding and turns
    /// symmetry/POR off; the solver declines and falls back to search.
    /// Confed/hierarchy searches ignore it.
    pub loop_prevention: bool,
}

impl Default for HuntOptions {
    fn default() -> Self {
        Self {
            max_states: 200_000,
            jobs: 0,
            symmetry: false,
            max_bytes: None,
            flat: true,
            por: false,
            deadline: None,
            solver: SolverMode::Search,
            loop_prevention: false,
        }
    }
}

/// The one place hunt knobs lower to explorer knobs. Field-by-field
/// copies at call sites are exactly how new knobs historically got
/// dropped on one path; go through this impl instead.
impl From<&HuntOptions> for ExploreOptions {
    fn from(o: &HuntOptions) -> ExploreOptions {
        let mut opts = ExploreOptions::new()
            .max_states(o.max_states)
            .jobs(o.jobs)
            .symmetry(o.symmetry)
            .flat_encoding(o.flat)
            .por(o.por)
            .solver(o.solver)
            .loop_prevention(o.loop_prevention);
        if let Some(b) = o.max_bytes {
            opts = opts.max_bytes(b);
        }
        if let Some(d) = o.deadline {
            opts = opts.deadline(d);
        }
        opts
    }
}

/// The budget view of the same knobs, for the confed/hierarchy searches
/// (which honor `max_states` and `deadline`; they have no byte
/// accounting, so `max_bytes` is carried but ignored — callers warn via
/// [`HuntOptions::reflection_only_flags`]).
impl From<&HuntOptions> for SearchBudget {
    fn from(o: &HuntOptions) -> SearchBudget {
        SearchBudget {
            max_states: o.max_states,
            max_bytes: o.max_bytes,
            deadline: o.deadline,
        }
    }
}

impl HuntOptions {
    /// Builder-style constructor matching the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the state cap.
    pub fn max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Replace the worker count (`0` = auto).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable or disable symmetry reduction.
    pub fn symmetry(mut self, symmetry: bool) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Replace the visited-set byte budget.
    pub fn max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Pick the flat (default) or legacy state encoding.
    pub fn flat(mut self, flat: bool) -> Self {
        self.flat = flat;
        self
    }

    /// Enable or disable partial-order reduction.
    pub fn por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Replace the wall-clock deadline.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Pick the classification backend (search, the default, or `Sat`).
    pub fn solver(mut self, solver: SolverMode) -> Self {
        self.solver = solver;
        self
    }

    /// Enable or disable the message-level reflection mechanics.
    pub fn loop_prevention(mut self, loop_prevention: bool) -> Self {
        self.loop_prevention = loop_prevention;
        self
    }

    /// The knobs only the instrumented flat-reflection search honors,
    /// listed by their command-line spelling when set to a non-default
    /// value. The dedicated confed/hierarchy searches ignore every one
    /// of these; callers routing a spec to those searches should warn
    /// per entry instead of silently dropping the flag.
    pub fn reflection_only_flags(&self) -> Vec<&'static str> {
        let mut set = Vec::new();
        if self.jobs != 0 {
            set.push("--jobs");
        }
        if self.symmetry {
            set.push("--symmetry");
        }
        if self.por {
            set.push("--por");
        }
        if self.max_bytes.is_some() {
            set.push("--max-bytes");
        }
        if !self.flat {
            set.push("the legacy state encoding");
        }
        if self.solver == SolverMode::Sat {
            set.push("--solver sat");
        }
        if self.loop_prevention {
            set.push("--loop-prevention");
        }
        set
    }
}

/// The outcome of classifying one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The oscillation class.
    pub class: OscillationClass,
    /// Distinct configurations the search visited.
    pub states: usize,
    /// Whether the reachable space was fully explored.
    pub complete: bool,
    /// Why the search ended — always from the search itself, never
    /// inferred from `complete`.
    pub stop: StopReason,
    /// Distinct stable best-exit vectors, canonical order.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    /// Search metrics — available on the flat-reflection path only (the
    /// confed/hierarchy searches do not instrument themselves, and the
    /// solver backend has no search to instrument).
    pub metrics: Option<Metrics>,
    /// Which backend produced the evidence. `Search` verdicts count
    /// *reachable* states and reachable stable vectors; `Solver`
    /// verdicts enumerate *all* stable routings (reachable or not) and
    /// never visit a state (`states` is 0).
    pub origin: VerdictOrigin,
    /// Exact number of stable routings of the whole instance, reachable
    /// or not — `Some` only when a complete solver enumeration
    /// established it. Search verdicts leave this `None` (they count
    /// reachable fixed points only).
    pub stable_count: Option<usize>,
}

impl Verdict {
    /// Whether this verdict is an oscillation-corpus keeper
    /// (proven persistent oscillation).
    pub fn is_oscillating(&self) -> bool {
        self.class == OscillationClass::Persistent
    }

    /// Whether this verdict is bistable-or-worse while still convergent:
    /// transient oscillation (multiple stable outcomes or a live cycle).
    pub fn is_bistable(&self) -> bool {
        self.class == OscillationClass::Transient
    }

    /// Whether the search gave no verdict (budget or deadline hit).
    pub fn is_inconclusive(&self) -> bool {
        self.class == OscillationClass::Unknown
    }

    /// The state cap that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn cap(&self) -> Option<usize> {
        self.stop.state_cap()
    }

    /// The byte budget that stopped the search, when one did.
    #[deprecated(note = "read the `stop` field (`StopReason`) instead")]
    pub fn memory(&self) -> Option<usize> {
        self.stop.memory_budget()
    }

    /// The one-line "inconclusive: ..." hint for this verdict, `None`
    /// when the search completed. Every front end (CLI, campaign
    /// summaries, the serve protocol) must print this exact wording.
    pub fn stop_hint(&self) -> Option<String> {
        self.stop.hint()
    }

    /// Render the full human-readable verdict block: the class line, the
    /// inconclusive hint, search size/completeness, metrics when the
    /// search was instrumented, and the stable solutions. The single
    /// verdict-printing path shared by `ibgp-cli classify`/`run`, `batch`
    /// summaries, and anything else that reports a verdict — wording
    /// lives here exactly once.
    pub fn render(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{label}: {}", self.class);
        if let Some(hint) = self.stop_hint() {
            let _ = writeln!(out, "  {hint}");
        }
        if self.origin == VerdictOrigin::Solver {
            let _ = writeln!(
                out,
                "  {} stable routing(s) in total, reachable or not (complete solver enumeration: {})",
                self.stable_count.unwrap_or(self.stable_vectors.len()),
                self.complete
            );
        } else {
            let _ = writeln!(
                out,
                "  {} reachable configurations (complete search: {})",
                self.states, self.complete
            );
        }
        if let Some(m) = &self.metrics {
            let _ = writeln!(
                out,
                "  explored at {:.0} states/sec on {} worker(s) (frontier depth {}, peak queue {})",
                m.states_per_sec(),
                m.workers,
                m.frontier_depth,
                m.peak_queue
            );
            let _ = writeln!(
                out,
                "  update cache: {:.1}% hit rate ({} hits / {} misses)",
                100.0 * m.cache_hit_rate(),
                m.cache_hits,
                m.cache_misses
            );
            if m.group_order > 0 {
                let _ = writeln!(
                    out,
                    "  symmetry: automorphism group of order {}, {:.2}x state reduction ({} orbit states)",
                    m.group_order,
                    m.reduction_factor(),
                    m.orbit_states
                );
            }
            if m.por_ample + m.por_full > 0 {
                let pruned = 100.0 * m.por_ample as f64 / (m.por_ample + m.por_full) as f64;
                let _ = writeln!(
                    out,
                    "  por: {} of {} expansions took the ample branch ({pruned:.1}% of the frontier pruned)",
                    m.por_ample,
                    m.por_ample + m.por_full
                );
            }
            if m.compactions > 0 {
                let _ = writeln!(
                    out,
                    "  memory: visited set compacted to digests {} time(s) ({} digest collision(s), peak {} bytes)",
                    m.compactions, m.digest_collisions, m.visited_bytes
                );
            }
        }
        let _ = writeln!(out, "  {} stable solution(s):", self.stable_vectors.len());
        for (i, sv) in self.stable_vectors.iter().enumerate() {
            let bests = sv
                .iter()
                .map(|b| b.map(|p| p.to_string()).unwrap_or_else(|| "-".into()))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "    #{}: {}", i + 1, bests);
        }
        out
    }
}

/// Derive the verdict taxonomy from plain search evidence (the
/// confed/hierarchy searches, which have no all-at-once cycle probe — for
/// them a unique stable outcome classifies as stable without the extra
/// live-cycle check the flat path performs). The stop reason comes from
/// the search itself, never inferred from `!complete`: an incomplete
/// search that stopped for some other reason must not be reported as
/// cap-stopped.
fn from_search(
    states: usize,
    complete: bool,
    stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    stop: StopReason,
) -> Verdict {
    let class = if !complete {
        OscillationClass::Unknown
    } else if stable_vectors.is_empty() {
        OscillationClass::Persistent
    } else if stable_vectors.len() > 1 {
        OscillationClass::Transient
    } else {
        OscillationClass::Stable
    };
    Verdict {
        class,
        states,
        complete,
        stop,
        stable_vectors,
        metrics: None,
        origin: VerdictOrigin::Search,
        stable_count: None,
    }
}

/// Classify a scenario spec: validate, lower, and run the exhaustive
/// search matching its kind.
///
/// This is *the* public classification entrypoint — the CLI verbs, the
/// campaign driver, the minimizer, the serve scheduler, and the facade's
/// `ibgp::classify` all route through it.
pub fn classify_spec(spec: &ScenarioSpec, opts: &HuntOptions) -> Result<Verdict, SpecError> {
    match spec.build()? {
        Built::Reflection {
            topology,
            config,
            exits,
        } => {
            // Loop prevention can come from the spec (a `loop-prevention`
            // directive) or the hunt knobs; either source turns it on.
            let mut explore: ExploreOptions = opts.into();
            if let SpecKind::Reflection(r) = &spec.kind {
                if r.loop_prevention {
                    explore = explore.loop_prevention(true);
                }
            }
            let (class, reach) = ibgp_analysis::classify(&topology, config, &exits, explore);
            let solved = reach.origin == VerdictOrigin::Solver;
            let stable_count = (solved && reach.complete).then_some(reach.stable_vectors.len());
            Ok(Verdict {
                class,
                states: reach.states,
                complete: reach.complete,
                stop: reach.stop,
                stable_vectors: reach.stable_vectors,
                // The solver's Metrics carry only wall-clock; rendering
                // them as search throughput would be nonsense.
                metrics: (!solved).then_some(reach.metrics),
                origin: reach.origin,
                stable_count,
            })
        }
        Built::Confed {
            topology,
            mode,
            exits,
        } => {
            let r = explore_confed(&topology, mode, exits, SearchBudget::from(opts));
            Ok(from_search(r.states, r.complete, r.stable_vectors, r.stop))
        }
        Built::Hierarchy {
            topology,
            mode,
            exits,
        } => {
            let r = explore_hier(&topology, mode, exits, SearchBudget::from(opts));
            Ok(from_search(r.states, r.complete, r.stable_vectors, r.stop))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfedSpec, ExitSpec, ReflectionSpec, SpecKind};
    use ibgp_confed::ConfedMode;
    use ibgp_proto::ProtocolVariant;

    fn disagree(variant: ProtocolVariant) -> ScenarioSpec {
        ScenarioSpec {
            name: "disagree".into(),
            routers: 4,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
                client_sessions: vec![],
                variant,
                loop_prevention: false,
            }),
            exits: vec![ExitSpec::new(1, 2, 1), ExitSpec::new(2, 3, 1)],
        }
    }

    #[test]
    fn reflection_verdicts_follow_the_analysis_path() {
        let opts = HuntOptions::default();
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_eq!(v.class, OscillationClass::Transient);
        assert!(v.is_bistable());
        assert_eq!(v.stable_vectors.len(), 2);
        assert!(v.metrics.is_some());
        let v = classify_spec(&disagree(ProtocolVariant::Modified), &opts).unwrap();
        assert_eq!(v.class, OscillationClass::Stable);
    }

    #[test]
    fn capped_search_is_inconclusive_with_cap_recorded() {
        let opts = HuntOptions {
            max_states: 2,
            ..HuntOptions::default()
        };
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert!(v.is_inconclusive());
        assert_eq!(v.stop, StopReason::StateCap(2));
        #[allow(deprecated)]
        let shim = v.cap();
        assert_eq!(shim, Some(2), "the deprecated accessor keeps working");
        assert!(!v.complete);
    }

    #[test]
    fn confed_specs_classify_through_their_search() {
        let spec = ScenarioSpec {
            name: "c".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2, 3]],
                confed_links: vec![(1, 2)],
                mode: ConfedMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 0, 1)],
        };
        let v = classify_spec(&spec, &HuntOptions::default()).unwrap();
        assert_eq!(v.class, OscillationClass::Stable);
        assert!(v.complete);
        assert!(v.metrics.is_none());
    }

    #[test]
    fn confed_capped_search_reports_the_cap_that_hit() {
        let spec = ScenarioSpec {
            name: "c".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2, 3]],
                confed_links: vec![(1, 2)],
                mode: ConfedMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 0, 1), ExitSpec::new(2, 3, 1)],
        };
        let opts = HuntOptions {
            max_states: 1,
            ..HuntOptions::default()
        };
        let v = classify_spec(&spec, &opts).unwrap();
        assert!(v.is_inconclusive());
        assert!(!v.complete);
        assert_eq!(
            v.stop,
            StopReason::StateCap(1),
            "the cap the search hit, from the search"
        );
    }

    #[test]
    fn reflection_only_flags_lists_each_dropped_knob() {
        assert!(HuntOptions::default().reflection_only_flags().is_empty());
        let opts = HuntOptions {
            jobs: 4,
            symmetry: true,
            por: true,
            max_bytes: Some(1 << 20),
            flat: false,
            solver: SolverMode::Sat,
            loop_prevention: true,
            ..HuntOptions::default()
        };
        assert_eq!(
            opts.reflection_only_flags(),
            vec![
                "--jobs",
                "--symmetry",
                "--por",
                "--max-bytes",
                "the legacy state encoding",
                "--solver sat",
                "--loop-prevention",
            ]
        );
        // One flag alone is reported alone.
        let opts = HuntOptions {
            symmetry: true,
            ..HuntOptions::default()
        };
        assert_eq!(opts.reflection_only_flags(), vec!["--symmetry"]);
    }

    #[test]
    fn from_search_never_fabricates_a_cap() {
        // An incomplete search that stopped for some reason other than
        // the state cap (deadline here) must not be printed as capped.
        let v = from_search(10, false, vec![], StopReason::Deadline);
        assert!(v.is_inconclusive());
        assert_eq!(v.stop, StopReason::Deadline);
        assert_eq!(
            v.stop_hint().unwrap(),
            "inconclusive: deadline exceeded (raise the deadline)"
        );
        // And a complete search carries no stop hint at all.
        let v = from_search(10, true, vec![vec![None]], StopReason::Complete);
        assert_eq!(v.class, OscillationClass::Stable);
        assert_eq!(v.stop_hint(), None);
    }

    #[test]
    fn render_is_the_single_wording_source() {
        let v = from_search(10, false, vec![], StopReason::StateCap(10));
        let text = v.render("x");
        assert!(text.starts_with("x: unknown (inconclusive search)\n"));
        assert!(text.contains("  inconclusive: state cap 10 reached (raise --max-states)\n"));
        assert!(text.contains("  10 reachable configurations (complete search: false)\n"));
        assert!(text.contains("  0 stable solution(s):\n"));
    }

    #[test]
    fn solver_verdicts_carry_origin_count_and_their_own_wording() {
        let opts = HuntOptions::new().solver(SolverMode::Sat);
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_eq!(v.class, OscillationClass::Transient);
        assert_eq!(v.origin, VerdictOrigin::Solver);
        assert_eq!(v.stable_count, Some(2));
        assert_eq!(v.states, 0, "the solver never visits a state");
        assert!(v.complete);
        assert!(v.metrics.is_none(), "no search ran, so no search metrics");
        let text = v.render("disagree");
        assert!(text.contains(
            "  2 stable routing(s) in total, reachable or not (complete solver enumeration: true)\n"
        ));
        assert!(!text.contains("reachable configurations"));
        // Variants the encoding does not cover fall back to search and
        // say so via the origin.
        let v = classify_spec(&disagree(ProtocolVariant::Modified), &opts).unwrap();
        assert_eq!(v.origin, VerdictOrigin::Search);
        assert_eq!(v.stable_count, None);
        assert!(v.metrics.is_some());
    }

    #[test]
    fn option_conversions_carry_every_knob() {
        let opts = HuntOptions::new()
            .max_states(77)
            .jobs(3)
            .symmetry(true)
            .max_bytes(1 << 20)
            .por(true)
            .solver(SolverMode::Search)
            .deadline(Instant::now() + std::time::Duration::from_secs(3600));
        let budget = SearchBudget::from(&opts);
        assert_eq!(budget.max_states, 77);
        assert_eq!(budget.max_bytes, Some(1 << 20));
        assert!(budget.deadline.is_some());
        // The ExploreOptions conversion compiles and feeds classify; an
        // hour-away deadline must not stop a tiny search.
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_ne!(v.stop, StopReason::Deadline);
    }

    /// Loop prevention reaches the engine from either source (the spec
    /// directive or the hunt knob), and under `--solver sat` the solver
    /// declines honestly: the verdict's origin says `Search`.
    #[test]
    fn loop_prevention_classifies_and_overrides_the_solver() {
        // Per-cluster singleton reflectors with no redundancy: verdicts
        // match the Transfer-predicate path on this spec.
        let base = classify_spec(&disagree(ProtocolVariant::Standard), &HuntOptions::default())
            .unwrap();
        let opts = HuntOptions::new().loop_prevention(true);
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_eq!(v.class, base.class);
        assert_eq!(v.stable_vectors, base.stable_vectors);

        let mut spec = disagree(ProtocolVariant::Standard);
        match &mut spec.kind {
            SpecKind::Reflection(r) => r.loop_prevention = true,
            _ => unreachable!(),
        }
        let v = classify_spec(&spec, &HuntOptions::default()).unwrap();
        assert_eq!(v.class, base.class);

        let opts = HuntOptions::new()
            .loop_prevention(true)
            .solver(SolverMode::Sat);
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_eq!(v.origin, VerdictOrigin::Search, "solver must decline");
        assert_eq!(v.stable_count, None);
    }

    #[test]
    fn build_errors_surface() {
        let mut bad = disagree(ProtocolVariant::Standard);
        bad.exits[0].at = 99;
        assert!(classify_spec(&bad, &HuntOptions::default()).is_err());
    }
}
