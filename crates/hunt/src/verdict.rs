//! One classification path for every scenario kind.
//!
//! [`classify_spec`] lowers a [`ScenarioSpec`] and classifies it with the
//! engine matching its kind: flat reflection specs go through the unified
//! `ibgp_analysis::classify` / `explore(..., ExploreOptions)` pipeline
//! (cap, worker pool, metrics, all-at-once cycle probe); confederation and
//! hierarchy specs go through their dedicated exhaustive searches, with
//! the same verdict taxonomy derived from the search evidence. The CLI's
//! `classify`, `run`, the campaign driver, and the minimizer all consume
//! the resulting [`Verdict`], so the "inconclusive: cap hit" reasoning
//! lives in exactly one place.

use crate::spec::{Built, ScenarioSpec, SpecError};
use ibgp_analysis::{ExploreOptions, OscillationClass};
use ibgp_confed::explore_confed;
use ibgp_hierarchy::explore_hier;
use ibgp_sim::Metrics;
use ibgp_types::ExitPathId;

/// Search knobs shared by every hunt entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HuntOptions {
    /// State cap per exploration.
    pub max_states: usize,
    /// Worker threads for the reflection search (`0`, the default, means
    /// one per hardware thread, sanely capped; confed/hierarchy searches
    /// are single-threaded).
    pub jobs: usize,
    /// Collapse automorphism orbits in the flat-reflection search
    /// (confed/hierarchy searches are uninstrumented and ignore this).
    pub symmetry: bool,
    /// Visited-set byte budget for the reflection search; `None` for
    /// unbounded.
    pub max_bytes: Option<usize>,
    /// Use the flat fixed-width state encoding (default) or the legacy
    /// `StateKey` path in the reflection search. Verdicts are identical
    /// either way (`tests/encoding_golden.rs` pins this on the whole
    /// committed corpus); the switch exists for A/B measurement and the
    /// equivalence suites.
    pub flat: bool,
    /// Prune each frontier state's branches to the invisible compound
    /// ample step in the reflection search (exact partial-order
    /// reduction; confed/hierarchy searches ignore this). Verdicts are
    /// unchanged — only the number of states visited shrinks.
    pub por: bool,
}

impl Default for HuntOptions {
    fn default() -> Self {
        Self {
            max_states: 200_000,
            jobs: 0,
            symmetry: false,
            max_bytes: None,
            flat: true,
            por: false,
        }
    }
}

impl HuntOptions {
    fn explore_options(&self) -> ExploreOptions {
        let opts = ExploreOptions::new()
            .max_states(self.max_states)
            .jobs(self.jobs)
            .symmetry(self.symmetry)
            .flat_encoding(self.flat)
            .por(self.por);
        match self.max_bytes {
            Some(b) => opts.max_bytes(b),
            None => opts,
        }
    }

    /// The knobs only the instrumented flat-reflection search honors,
    /// listed by their command-line spelling when set to a non-default
    /// value. The dedicated confed/hierarchy searches ignore every one
    /// of these; callers routing a spec to those searches should warn
    /// per entry instead of silently dropping the flag.
    pub fn reflection_only_flags(&self) -> Vec<&'static str> {
        let mut set = Vec::new();
        if self.jobs != 0 {
            set.push("--jobs");
        }
        if self.symmetry {
            set.push("--symmetry");
        }
        if self.por {
            set.push("--por");
        }
        if self.max_bytes.is_some() {
            set.push("--max-bytes");
        }
        if !self.flat {
            set.push("the legacy state encoding");
        }
        set
    }
}

/// The outcome of classifying one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The oscillation class.
    pub class: OscillationClass,
    /// Distinct configurations the search visited.
    pub states: usize,
    /// Whether the reachable space was fully explored.
    pub complete: bool,
    /// The state cap that stopped the search, when one did.
    pub cap: Option<usize>,
    /// The visited-set byte budget that stopped the search, when one did
    /// (memory-stopped searches are inconclusive, like capped ones).
    pub memory: Option<usize>,
    /// Distinct stable best-exit vectors, canonical order.
    pub stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    /// Search metrics — available on the flat-reflection path only (the
    /// confed/hierarchy searches do not instrument themselves).
    pub metrics: Option<Metrics>,
}

impl Verdict {
    /// Whether this verdict is an oscillation-corpus keeper
    /// (proven persistent oscillation).
    pub fn is_oscillating(&self) -> bool {
        self.class == OscillationClass::Persistent
    }

    /// Whether this verdict is bistable-or-worse while still convergent:
    /// transient oscillation (multiple stable outcomes or a live cycle).
    pub fn is_bistable(&self) -> bool {
        self.class == OscillationClass::Transient
    }

    /// Whether the search gave no verdict (cap hit).
    pub fn is_inconclusive(&self) -> bool {
        self.class == OscillationClass::Unknown
    }
}

/// Derive the verdict taxonomy from plain search evidence (the
/// confed/hierarchy searches, which have no all-at-once cycle probe — for
/// them a unique stable outcome classifies as stable without the extra
/// live-cycle check the flat path performs). The stop reason (`cap`)
/// comes from the search itself, never inferred from `!complete`: an
/// incomplete search that stopped for some other reason must not be
/// reported as cap-stopped.
fn from_search(
    states: usize,
    complete: bool,
    stable_vectors: Vec<Vec<Option<ExitPathId>>>,
    cap: Option<usize>,
) -> Verdict {
    let class = if !complete {
        OscillationClass::Unknown
    } else if stable_vectors.is_empty() {
        OscillationClass::Persistent
    } else if stable_vectors.len() > 1 {
        OscillationClass::Transient
    } else {
        OscillationClass::Stable
    };
    Verdict {
        class,
        states,
        complete,
        cap,
        memory: None,
        stable_vectors,
        metrics: None,
    }
}

/// Classify a scenario spec: validate, lower, and run the exhaustive
/// search matching its kind.
pub fn classify_spec(spec: &ScenarioSpec, opts: &HuntOptions) -> Result<Verdict, SpecError> {
    match spec.build()? {
        Built::Reflection {
            topology,
            config,
            exits,
        } => {
            let (class, reach) =
                ibgp_analysis::classify(&topology, config, &exits, opts.explore_options());
            Ok(Verdict {
                class,
                states: reach.states,
                complete: reach.complete,
                cap: reach.cap,
                memory: reach.memory,
                stable_vectors: reach.stable_vectors,
                metrics: Some(reach.metrics),
            })
        }
        Built::Confed {
            topology,
            mode,
            exits,
        } => {
            let r = explore_confed(&topology, mode, exits, opts.max_states);
            Ok(from_search(r.states, r.complete, r.stable_vectors, r.cap))
        }
        Built::Hierarchy {
            topology,
            mode,
            exits,
        } => {
            let r = explore_hier(&topology, mode, exits, opts.max_states);
            Ok(from_search(r.states, r.complete, r.stable_vectors, r.cap))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfedSpec, ExitSpec, ReflectionSpec, SpecKind};
    use ibgp_confed::ConfedMode;
    use ibgp_proto::ProtocolVariant;

    fn disagree(variant: ProtocolVariant) -> ScenarioSpec {
        ScenarioSpec {
            name: "disagree".into(),
            routers: 4,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
                client_sessions: vec![],
                variant,
            }),
            exits: vec![ExitSpec::new(1, 2, 1), ExitSpec::new(2, 3, 1)],
        }
    }

    #[test]
    fn reflection_verdicts_follow_the_analysis_path() {
        let opts = HuntOptions::default();
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert_eq!(v.class, OscillationClass::Transient);
        assert!(v.is_bistable());
        assert_eq!(v.stable_vectors.len(), 2);
        assert!(v.metrics.is_some());
        let v = classify_spec(&disagree(ProtocolVariant::Modified), &opts).unwrap();
        assert_eq!(v.class, OscillationClass::Stable);
    }

    #[test]
    fn capped_search_is_inconclusive_with_cap_recorded() {
        let opts = HuntOptions {
            max_states: 2,
            ..HuntOptions::default()
        };
        let v = classify_spec(&disagree(ProtocolVariant::Standard), &opts).unwrap();
        assert!(v.is_inconclusive());
        assert_eq!(v.cap, Some(2));
        assert!(!v.complete);
    }

    #[test]
    fn confed_specs_classify_through_their_search() {
        let spec = ScenarioSpec {
            name: "c".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2, 3]],
                confed_links: vec![(1, 2)],
                mode: ConfedMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 0, 1)],
        };
        let v = classify_spec(&spec, &HuntOptions::default()).unwrap();
        assert_eq!(v.class, OscillationClass::Stable);
        assert!(v.complete);
        assert!(v.metrics.is_none());
    }

    #[test]
    fn confed_capped_search_reports_the_cap_that_hit() {
        let spec = ScenarioSpec {
            name: "c".into(),
            routers: 4,
            links: vec![(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            kind: SpecKind::Confed(ConfedSpec {
                sub_as: vec![vec![0, 1], vec![2, 3]],
                confed_links: vec![(1, 2)],
                mode: ConfedMode::SingleBest,
            }),
            exits: vec![ExitSpec::new(1, 0, 1), ExitSpec::new(2, 3, 1)],
        };
        let opts = HuntOptions {
            max_states: 1,
            ..HuntOptions::default()
        };
        let v = classify_spec(&spec, &opts).unwrap();
        assert!(v.is_inconclusive());
        assert!(!v.complete);
        assert_eq!(v.cap, Some(1), "the cap the search hit, from the search");
    }

    #[test]
    fn reflection_only_flags_lists_each_dropped_knob() {
        assert!(HuntOptions::default().reflection_only_flags().is_empty());
        let opts = HuntOptions {
            jobs: 4,
            symmetry: true,
            por: true,
            max_bytes: Some(1 << 20),
            flat: false,
            ..HuntOptions::default()
        };
        assert_eq!(
            opts.reflection_only_flags(),
            vec![
                "--jobs",
                "--symmetry",
                "--por",
                "--max-bytes",
                "the legacy state encoding",
            ]
        );
        // One flag alone is reported alone.
        let opts = HuntOptions {
            symmetry: true,
            ..HuntOptions::default()
        };
        assert_eq!(opts.reflection_only_flags(), vec!["--symmetry"]);
    }

    #[test]
    fn from_search_never_fabricates_a_cap() {
        // An incomplete search that stopped for some reason other than the
        // state cap (future: memory, time) must not be printed as capped.
        let v = from_search(10, false, vec![], None);
        assert!(v.is_inconclusive());
        assert_eq!(v.cap, None);
        // And a complete search carries no cap at all.
        let v = from_search(10, true, vec![vec![None]], None);
        assert_eq!(v.class, OscillationClass::Stable);
        assert_eq!(v.cap, None);
    }

    #[test]
    fn build_errors_surface() {
        let mut bad = disagree(ProtocolVariant::Standard);
        bad.exits[0].at = 99;
        assert!(classify_spec(&bad, &HuntOptions::default()).is_err());
    }
}
