//! # ibgp-hunt
//!
//! An **oscillation-hunting corpus** for the paper's configuration
//! classes. The paper proves deciding I-BGP stability NP-complete (§5),
//! so beyond the hand-built figures the practical way to study
//! oscillation is empirical: generate many small configurations, classify
//! each exhaustively, and keep the interesting ones. This crate is that
//! pipeline:
//!
//! * [`spec`] — a plain-data scenario description ([`ScenarioSpec`])
//!   covering all three session-graph models (flat reflection,
//!   confederations, nested hierarchies) plus injected exit paths, with
//!   validation and lowering into the runnable engine inputs.
//! * [`format`] — the `.ibgp` on-disk encoding: a hand-rolled,
//!   line-oriented text format with a deterministic printer and a strict
//!   parser that round-trip exactly (`parse(print(s)) == s`).
//! * [`signature`] — canonical structural signatures (WL refinement +
//!   minimal-certificate canonicalization) so isomorphic specimens
//!   deduplicate to one corpus file.
//! * [`verdict`] — the single classification path every consumer shares:
//!   flat reflection through `ibgp_analysis::classify` (with its state
//!   cap, worker pool, and cycle probe), confederations and hierarchies
//!   through their exhaustive searches, all mapped onto one [`Verdict`].
//! * [`generate`] — seeded random topology families biased toward the
//!   paper's oscillation ingredient (same-AS exits with distinct MEDs).
//! * [`campaign`] — the budgeted driver: generate, classify, file into
//!   `corpus/{oscillating,bistable,inconclusive}/` deduplicated by
//!   signature; byte-identical output for a fixed seed and budget.
//! * [`corpus`] — specimen I/O and corpus statistics.
//! * [`minimize`] — a greedy delta-debugging minimizer that removes
//!   routers, sessions, and exit paths while provably preserving the
//!   specimen's verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod format;
pub mod generate;
pub mod minimize;
pub mod signature;
pub mod spec;
pub mod verdict;

pub use campaign::{bucket_for, run_campaign, CampaignConfig, CampaignError, CampaignReport};
pub use corpus::{load_spec, stats, write_specimen, CorpusError, CorpusStats, BUCKETS};
pub use format::{parse, print, FormatError};
pub use generate::{generate_spec, Family, ALL_FAMILIES};
pub use minimize::{minimize, MinimizeOutcome};
pub use signature::{file_stem, signature};
pub use spec::{Built, ExitSpec, ScenarioSpec, SpecError, SpecKind};
pub use verdict::{classify_spec, HuntOptions, Verdict};
