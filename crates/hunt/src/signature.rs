//! Canonical structural signatures for corpus deduplication.
//!
//! Two specimens that differ only by router renumbering, declaration
//! order, or exit-path ids describe the same experiment, and the campaign
//! driver must file them once. [`signature`] computes a label-invariant
//! fingerprint: it builds a labeled graph (routers plus auxiliary nodes
//! for clusters / sub-ASes / hierarchy clusters), refines node colors
//! Weisfeiler–Lehman style, and then enumerates the router permutations
//! consistent with the refined color classes, taking the
//! lexicographically minimal printed certificate (`c:` prefix).
//!
//! When the symmetry group admitted by the refinement is too large to
//! enumerate (product of color-class factorials above [`PERM_CAP`]), the
//! signature falls back to a hash of the refined color multiset (`w:`
//! prefix). The choice is made from the label-invariant refinement alone,
//! *before* any enumeration, so both branches stay permutation-invariant;
//! the `w:` branch merely loses the guarantee that non-isomorphic but
//! WL-equivalent specimens get distinct signatures (acceptable for dedup:
//! it can only over-merge pathologically symmetric specimens).

use crate::spec::{ScenarioSpec, SpecKind};
use ibgp_hierarchy::{ClusterSpec, Member};
use ibgp_topology::canon::{
    class_symmetry, fnv, fnv_u64, for_each_perm, hash_parts, hash_str, ColoredGraph, FNV_OFFSET,
};

// The WL refinement / permutation-enumeration machinery lives in
// `ibgp_topology::canon` (shared with the orbit-pruned reachability
// search); this module keeps only the spec-graph encoding and the
// printed-certificate canonicalization.
pub use ibgp_topology::canon::PERM_CAP;

/// Exit attributes as sorted by the certificate, identity dropped:
/// `(next_as, len, med, pref, cost)`.
type ExitKey = (u32, u32, u32, u32, u64);

fn exit_key(e: &crate::spec::ExitSpec) -> ExitKey {
    (e.next_as, e.len, e.med, e.pref, e.cost)
}

fn build_colored(spec: &ScenarioSpec) -> ColoredGraph {
    let n = spec.routers;
    // Initial router colors: the multiset of exit attributes injected at
    // the router. Everything else (links, roles) arrives via labeled
    // edges during refinement.
    let colors: Vec<u64> = (0..n)
        .map(|r| {
            let mut attrs: Vec<u64> = spec
                .exits
                .iter()
                .filter(|e| e.at as usize == r)
                .map(|e| {
                    let k = exit_key(e);
                    hash_parts(&[k.0 as u64, k.1 as u64, k.2 as u64, k.3 as u64, k.4])
                })
                .collect();
            attrs.sort_unstable();
            attrs.insert(0, hash_str("router"));
            hash_parts(&attrs)
        })
        .collect();
    let mut g = ColoredGraph::new(colors);
    for &(u, v, c) in &spec.links {
        let label = hash_parts(&[hash_str("p"), c]);
        g.add_edge(u as usize, v as usize, label);
    }
    match &spec.kind {
        SpecKind::Reflection(r) => {
            for (rs, cs) in &r.clusters {
                let aux = g.add_node(hash_str("cluster"));
                for &x in rs {
                    g.add_edge(aux, x as usize, hash_str("r"));
                }
                for &x in cs {
                    g.add_edge(aux, x as usize, hash_str("c"));
                }
            }
            for &(u, v) in &r.client_sessions {
                g.add_edge(u as usize, v as usize, hash_str("s"));
            }
        }
        SpecKind::Confed(c) => {
            for members in &c.sub_as {
                let aux = g.add_node(hash_str("subas"));
                for &x in members {
                    g.add_edge(aux, x as usize, hash_str("m"));
                }
            }
            for &(u, v) in &c.confed_links {
                g.add_edge(u as usize, v as usize, hash_str("cl"));
            }
        }
        SpecKind::Hierarchy(h) => {
            for top in &h.top {
                add_hier_aux(&mut g, top, None);
            }
        }
    }
    g
}

fn add_hier_aux(g: &mut ColoredGraph, c: &ClusterSpec, parent: Option<usize>) {
    let aux = g.add_node(hash_str("hcluster"));
    if let Some(p) = parent {
        g.add_edge(p, aux, hash_str("pc"));
    }
    for &r in &c.reflectors {
        g.add_edge(aux, r as usize, hash_str("r"));
    }
    for m in &c.members {
        match m {
            Member::Router(r) => g.add_edge(aux, *r as usize, hash_str("m")),
            Member::Cluster(sub) => add_hier_aux(g, sub, Some(aux)),
        }
    }
}

/// The canonical printed certificate of `spec` under a router relabeling
/// `perm` (old id → new id): every list sorted after relabeling, exit ids
/// and the scenario name dropped.
fn certificate(spec: &ScenarioSpec, perm: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "k={};p={};n={};",
        spec.kind.keyword(),
        spec.protocol_label(),
        spec.routers
    );
    let mut links: Vec<(u32, u32, u64)> = spec
        .links
        .iter()
        .map(|&(u, v, c)| {
            let (u, v) = (perm[u as usize], perm[v as usize]);
            (u.min(v), u.max(v), c)
        })
        .collect();
    links.sort_unstable();
    let _ = write!(out, "L{links:?};");
    match &spec.kind {
        SpecKind::Reflection(r) => {
            if r.full_mesh {
                out.push_str("mesh;");
            } else {
                let mut clusters: Vec<(Vec<u32>, Vec<u32>)> = r
                    .clusters
                    .iter()
                    .map(|(rs, cs)| {
                        let mut rs: Vec<u32> = rs.iter().map(|&x| perm[x as usize]).collect();
                        let mut cs: Vec<u32> = cs.iter().map(|&x| perm[x as usize]).collect();
                        rs.sort_unstable();
                        cs.sort_unstable();
                        (rs, cs)
                    })
                    .collect();
                clusters.sort();
                let _ = write!(out, "C{clusters:?};");
            }
            let mut sessions: Vec<(u32, u32)> = r
                .client_sessions
                .iter()
                .map(|&(u, v)| {
                    let (u, v) = (perm[u as usize], perm[v as usize]);
                    (u.min(v), u.max(v))
                })
                .collect();
            sessions.sort_unstable();
            let _ = write!(out, "S{sessions:?};");
        }
        SpecKind::Confed(c) => {
            let mut sub_as: Vec<Vec<u32>> = c
                .sub_as
                .iter()
                .map(|members| {
                    let mut m: Vec<u32> = members.iter().map(|&x| perm[x as usize]).collect();
                    m.sort_unstable();
                    m
                })
                .collect();
            sub_as.sort();
            let _ = write!(out, "A{sub_as:?};");
            let mut clinks: Vec<(u32, u32)> = c
                .confed_links
                .iter()
                .map(|&(u, v)| {
                    let (u, v) = (perm[u as usize], perm[v as usize]);
                    (u.min(v), u.max(v))
                })
                .collect();
            clinks.sort_unstable();
            let _ = write!(out, "X{clinks:?};");
        }
        SpecKind::Hierarchy(h) => {
            let mut tops: Vec<String> = h.top.iter().map(|c| hier_certificate(c, perm)).collect();
            tops.sort();
            let _ = write!(out, "H{};", tops.join(""));
        }
    }
    let mut exits: Vec<(u32, ExitKey)> = spec
        .exits
        .iter()
        .map(|e| (perm[e.at as usize], exit_key(e)))
        .collect();
    exits.sort_unstable();
    let _ = write!(out, "E{exits:?}");
    out
}

fn hier_certificate(c: &ClusterSpec, perm: &[u32]) -> String {
    let mut rs: Vec<u32> = c.reflectors.iter().map(|&x| perm[x as usize]).collect();
    rs.sort_unstable();
    let mut leaves: Vec<u32> = Vec::new();
    let mut subs: Vec<String> = Vec::new();
    for m in &c.members {
        match m {
            Member::Router(r) => leaves.push(perm[*r as usize]),
            Member::Cluster(sub) => subs.push(hier_certificate(sub, perm)),
        }
    }
    leaves.sort_unstable();
    subs.sort();
    format!("(r{rs:?}m{leaves:?}{})", subs.join(""))
}

/// Compute the canonical structural signature of a spec.
///
/// Signatures are invariant under router renumbering, declaration-order
/// changes, and exit-id renaming; `c:`-prefixed signatures additionally
/// distinguish any two non-isomorphic specs. The 16 hex digits double as
/// the specimen's corpus filename stem.
pub fn signature(spec: &ScenarioSpec) -> String {
    let mut g = build_colored(spec);
    g.refine();
    // Group routers (not aux nodes) into color classes, ordered by color
    // value so the canonical position blocks are label-invariant.
    let mut by_color: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    for r in 0..spec.routers {
        by_color.entry(g.colors[r]).or_default().push(r);
    }
    let classes: Vec<Vec<usize>> = by_color.into_values().collect();
    if class_symmetry(&classes) > PERM_CAP {
        // Label-invariant fallback: hash the refined color multiset of
        // the whole graph (routers + structure nodes) plus the scalars.
        let mut all = g.colors.clone();
        all.sort_unstable();
        let mut h = FNV_OFFSET;
        fnv(&mut h, b"w");
        fnv(&mut h, spec.kind.keyword().as_bytes());
        fnv(&mut h, spec.protocol_label().as_bytes());
        fnv_u64(&mut h, spec.routers as u64);
        for c in all {
            fnv_u64(&mut h, c);
        }
        return format!("w:{h:016x}");
    }
    let mut starts = Vec::with_capacity(classes.len());
    let mut next = 0u32;
    for c in &classes {
        starts.push(next);
        next += c.len() as u32;
    }
    let mut best: Option<String> = None;
    for_each_perm(&classes, &starts, &mut |perm| {
        let cert = certificate(spec, perm);
        if best.as_ref().is_none_or(|b| cert < *b) {
            best = Some(cert);
        }
    });
    let cert = best.expect("at least the identity-per-class permutation exists");
    let mut h = FNV_OFFSET;
    fnv(&mut h, cert.as_bytes());
    format!("c:{h:016x}")
}

/// The filename stem a signature files under (`sig-<16 hex digits>`).
pub fn file_stem(sig: &str) -> String {
    let hex = sig.rsplit(':').next().unwrap_or(sig);
    format!("sig-{hex}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ConfedSpec, ExitSpec, ReflectionSpec, ScenarioSpec, SpecKind};
    use ibgp_confed::ConfedMode;
    use ibgp_proto::ProtocolVariant;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            name: "base".into(),
            routers: 4,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2]), (vec![1], vec![3])],
                client_sessions: vec![],
                variant: ProtocolVariant::Standard,
                loop_prevention: false,
            }),
            exits: vec![ExitSpec::new(1, 2, 1), ExitSpec::new(2, 3, 1)],
        }
    }

    /// `base()` with routers renamed by `p`, lines reordered, and exit
    /// ids shifted — structurally the same experiment.
    fn relabeled(p: [u32; 4]) -> ScenarioSpec {
        let m = |x: u32| p[x as usize];
        ScenarioSpec {
            name: "renamed".into(),
            routers: 4,
            links: vec![
                (m(1), m(2), 1),
                (m(0), m(3), 1),
                (m(1), m(3), 10),
                (m(0), m(2), 10),
            ],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![m(1)], vec![m(3)]), (vec![m(0)], vec![m(2)])],
                client_sessions: vec![],
                variant: ProtocolVariant::Standard,
                loop_prevention: false,
            }),
            exits: vec![ExitSpec::new(7, m(3), 1), ExitSpec::new(9, m(2), 1)],
        }
    }

    #[test]
    fn signature_is_renaming_invariant() {
        let sig = signature(&base());
        assert!(sig.starts_with("c:"), "{sig}");
        for p in [[1, 0, 3, 2], [0, 1, 3, 2], [2, 3, 0, 1]] {
            assert_eq!(signature(&relabeled(p)), sig, "perm {p:?}");
        }
    }

    #[test]
    fn signature_distinguishes_attribute_changes() {
        let sig = signature(&base());
        let mut other = base();
        other.exits[0] = other.exits[0].med(7);
        assert_ne!(signature(&other), sig);
        let mut other = base();
        other.links[0].2 = 11;
        assert_ne!(signature(&other), sig);
        let mut other = base();
        if let SpecKind::Reflection(r) = &mut other.kind {
            r.variant = ProtocolVariant::Walton;
        }
        assert_ne!(signature(&other), sig);
        // Loop prevention changes the classified behaviour, so the two
        // corpora must never collide on a signature.
        let mut other = base();
        if let SpecKind::Reflection(r) = &mut other.kind {
            r.loop_prevention = true;
        }
        assert_ne!(signature(&other), sig);
    }

    #[test]
    fn oversymmetric_specs_fall_back_to_refinement_hash() {
        // 8 indistinguishable routers in a full mesh with uniform link
        // costs: the refinement cannot split them, 8! > PERM_CAP.
        let mesh = |names: [u32; 8]| {
            let mut links = Vec::new();
            for i in 0..8u32 {
                for j in (i + 1)..8u32 {
                    links.push((names[i as usize], names[j as usize], 1));
                }
            }
            ScenarioSpec {
                name: "mesh8".into(),
                routers: 8,
                links,
                kind: SpecKind::Reflection(ReflectionSpec {
                    full_mesh: true,
                    clusters: vec![],
                    client_sessions: vec![],
                    variant: ProtocolVariant::Standard,
                    loop_prevention: false,
                }),
                exits: vec![],
            }
        };
        let a = signature(&mesh([0, 1, 2, 3, 4, 5, 6, 7]));
        assert!(a.starts_with("w:"), "{a}");
        let b = signature(&mesh([7, 6, 5, 4, 3, 2, 1, 0]));
        assert_eq!(a, b);
    }

    #[test]
    fn confed_signature_is_renaming_invariant() {
        let spec = |swap: bool| {
            let m = |x: u32| if swap { 4 - x } else { x };
            ScenarioSpec {
                name: "c".into(),
                routers: 5,
                links: vec![
                    (m(0), m(1), 1),
                    (m(1), m(2), 2),
                    (m(2), m(3), 3),
                    (m(3), m(4), 4),
                ],
                kind: SpecKind::Confed(ConfedSpec {
                    sub_as: vec![vec![m(0), m(1)], vec![m(2)], vec![m(3), m(4)]],
                    confed_links: vec![(m(1), m(2)), (m(2), m(3))],
                    mode: ConfedMode::SingleBest,
                }),
                exits: vec![ExitSpec::new(1, m(0), 1), ExitSpec::new(2, m(4), 2)],
            }
        };
        assert_eq!(signature(&spec(false)), signature(&spec(true)));
        let mut asym = spec(false);
        if let SpecKind::Confed(c) = &mut asym.kind {
            c.mode = ConfedMode::SetAdvertisement;
        }
        assert_ne!(signature(&asym), signature(&spec(false)));
    }

    #[test]
    fn file_stem_strips_prefix() {
        assert_eq!(file_stem("c:00ff00ff00ff00ff"), "sig-00ff00ff00ff00ff");
        assert_eq!(file_stem("w:0123456789abcdef"), "sig-0123456789abcdef");
    }
}
