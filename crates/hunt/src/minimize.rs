//! Greedy delta-debugging minimizer for corpus specimens.
//!
//! [`minimize`] takes a classified specimen and repeatedly tries
//! structural reductions — removing a router (with its links, sessions,
//! cluster roles, and exits), removing a declared session (client–client
//! or confed-E-BGP), removing an exit path — keeping a reduction only if
//! the shrunken spec still classifies to the *same* verdict as its
//! parent. The search is greedy with restart: after any accepted
//! reduction it rescans from the first candidate, so the result is
//! 1-minimal (no single remaining reduction preserves the verdict).
//!
//! Verdict preservation is enforced on every acceptance and re-checked on
//! the final result, so a minimizer-emitted specimen can never classify
//! differently from its parent. Specs whose baseline verdict is `Unknown`
//! (cap hit) are returned unchanged — shrinking an inconclusive search
//! toward "still inconclusive" would optimize for slowness, not
//! structure.

use crate::spec::{ScenarioSpec, SpecError, SpecKind};
use crate::verdict::{classify_spec, HuntOptions, Verdict};
use ibgp_analysis::OscillationClass;
use ibgp_hierarchy::{ClusterSpec, Member};

/// The result of minimizing one spec.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The minimized spec (equal to the input when already minimal).
    pub spec: ScenarioSpec,
    /// The preserved verdict (of the minimized spec; its class equals the
    /// parent's by construction).
    pub verdict: Verdict,
    /// Routers removed.
    pub removed_routers: usize,
    /// Declared sessions removed (client–client or confed links).
    pub removed_sessions: usize,
    /// Exit paths removed.
    pub removed_exits: usize,
    /// Classification runs spent (the dominant cost).
    pub reclassifications: usize,
}

/// Remove router `k` from a spec: drop its links, sessions, cluster
/// roles, and exits, and renumber every id above it down by one. Returns
/// `None` when the removal is structurally hopeless (last router); other
/// invalid outcomes (disconnection, clientless clusters, …) are left for
/// `build()` to reject in the candidate check.
fn remove_router(spec: &ScenarioSpec, k: u32) -> Option<ScenarioSpec> {
    if spec.routers <= 1 {
        return None;
    }
    let shift = |x: u32| if x > k { x - 1 } else { x };
    let mut out = spec.clone();
    out.routers -= 1;
    out.links = spec
        .links
        .iter()
        .filter(|&&(u, v, _)| u != k && v != k)
        .map(|&(u, v, c)| (shift(u), shift(v), c))
        .collect();
    out.exits = spec
        .exits
        .iter()
        .filter(|e| e.at != k)
        .map(|e| {
            let mut e = *e;
            e.at = shift(e.at);
            e
        })
        .collect();
    match &mut out.kind {
        SpecKind::Reflection(r) => {
            for (rs, cs) in &mut r.clusters {
                rs.retain(|&x| x != k);
                cs.retain(|&x| x != k);
                for x in rs.iter_mut().chain(cs.iter_mut()) {
                    *x = shift(*x);
                }
            }
            r.clusters
                .retain(|(rs, cs)| !(rs.is_empty() && cs.is_empty()));
            r.client_sessions.retain(|&(u, v)| u != k && v != k);
            for (u, v) in &mut r.client_sessions {
                *u = shift(*u);
                *v = shift(*v);
            }
        }
        SpecKind::Confed(c) => {
            for members in &mut c.sub_as {
                members.retain(|&x| x != k);
                for x in members.iter_mut() {
                    *x = shift(*x);
                }
            }
            c.sub_as.retain(|m| !m.is_empty());
            c.confed_links.retain(|&(u, v)| u != k && v != k);
            for (u, v) in &mut c.confed_links {
                *u = shift(*u);
                *v = shift(*v);
            }
        }
        SpecKind::Hierarchy(h) => {
            for top in &mut h.top {
                remove_router_from_cluster(top, k);
            }
            h.top
                .retain(|c| !(c.reflectors.is_empty() && c.members.is_empty()));
            for top in &mut h.top {
                shift_cluster(top, k);
            }
        }
    }
    Some(out)
}

fn remove_router_from_cluster(c: &mut ClusterSpec, k: u32) {
    c.reflectors.retain(|&x| x != k);
    c.members.retain_mut(|m| match m {
        Member::Router(r) => *r != k,
        Member::Cluster(sub) => {
            remove_router_from_cluster(sub, k);
            !(sub.reflectors.is_empty() && sub.members.is_empty())
        }
    });
}

fn shift_cluster(c: &mut ClusterSpec, k: u32) {
    for r in &mut c.reflectors {
        if *r > k {
            *r -= 1;
        }
    }
    for m in &mut c.members {
        match m {
            Member::Router(r) => {
                if *r > k {
                    *r -= 1;
                }
            }
            Member::Cluster(sub) => shift_cluster(sub, k),
        }
    }
}

/// Remove the `i`-th declared session (client–client session for
/// reflection specs, confed link for confederations; hierarchies declare
/// none).
fn remove_session(spec: &ScenarioSpec, i: usize) -> Option<ScenarioSpec> {
    let mut out = spec.clone();
    match &mut out.kind {
        SpecKind::Reflection(r) => {
            if i >= r.client_sessions.len() {
                return None;
            }
            r.client_sessions.remove(i);
        }
        SpecKind::Confed(c) => {
            if i >= c.confed_links.len() {
                return None;
            }
            c.confed_links.remove(i);
        }
        SpecKind::Hierarchy(_) => return None,
    }
    Some(out)
}

fn session_count(spec: &ScenarioSpec) -> usize {
    match &spec.kind {
        SpecKind::Reflection(r) => r.client_sessions.len(),
        SpecKind::Confed(c) => c.confed_links.len(),
        SpecKind::Hierarchy(_) => 0,
    }
}

/// One reduction kind, in candidate order.
enum Reduction {
    Router(u32),
    Session(usize),
    Exit(usize),
}

/// Minimize a spec while preserving its oscillation-class verdict.
pub fn minimize(spec: &ScenarioSpec, opts: &HuntOptions) -> Result<MinimizeOutcome, SpecError> {
    let baseline = classify_spec(spec, opts)?;
    let mut reclassifications = 1usize;
    let mut outcome = MinimizeOutcome {
        spec: spec.clone(),
        verdict: baseline.clone(),
        removed_routers: 0,
        removed_sessions: 0,
        removed_exits: 0,
        reclassifications,
    };
    if baseline.class == OscillationClass::Unknown {
        // No verdict to preserve; shrinking "inconclusive" is meaningless.
        return Ok(outcome);
    }
    let target = baseline.class;
    'restart: loop {
        let current = &outcome.spec;
        let candidates = (0..current.routers as u32)
            .map(Reduction::Router)
            .chain((0..session_count(current)).map(Reduction::Session))
            .chain((0..current.exits.len()).map(Reduction::Exit));
        for cand in candidates {
            let shrunk = match cand {
                Reduction::Router(k) => remove_router(current, k),
                Reduction::Session(i) => remove_session(current, i),
                Reduction::Exit(i) => {
                    let mut s = current.clone();
                    s.exits.remove(i);
                    Some(s)
                }
            };
            let Some(shrunk) = shrunk else { continue };
            // Structurally invalid candidates (disconnected graph,
            // reflectorless cluster, …) are skipped, not errors.
            if shrunk.build().is_err() {
                continue;
            }
            let verdict = classify_spec(&shrunk, opts)?;
            reclassifications += 1;
            if verdict.class == target {
                match cand {
                    Reduction::Router(_) => outcome.removed_routers += 1,
                    Reduction::Session(_) => outcome.removed_sessions += 1,
                    Reduction::Exit(_) => outcome.removed_exits += 1,
                }
                outcome.spec = shrunk;
                outcome.verdict = verdict;
                continue 'restart;
            }
        }
        break;
    }
    // Belt and braces: the emitted specimen must classify like its
    // parent. `outcome.verdict` is the classification of `outcome.spec`
    // (updated on every acceptance), so this cannot fire unless the
    // search itself is broken.
    assert_eq!(
        outcome.verdict.class, target,
        "minimizer verdict drifted from the parent's"
    );
    outcome.reclassifications = reclassifications;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExitSpec, ReflectionSpec};
    use ibgp_proto::ProtocolVariant;

    /// The disagree gadget plus an idle padding router: a client with no
    /// exits hanging off cluster 0.
    fn padded_disagree() -> ScenarioSpec {
        ScenarioSpec {
            name: "padded".into(),
            routers: 5,
            links: vec![(0, 2, 10), (0, 3, 1), (1, 3, 10), (1, 2, 1), (0, 4, 1)],
            kind: SpecKind::Reflection(ReflectionSpec {
                full_mesh: false,
                clusters: vec![(vec![0], vec![2, 4]), (vec![1], vec![3])],
                client_sessions: vec![],
                variant: ProtocolVariant::Standard,
                loop_prevention: false,
            }),
            exits: vec![ExitSpec::new(1, 2, 1), ExitSpec::new(2, 3, 1)],
        }
    }

    #[test]
    fn padding_router_is_removed_and_verdict_preserved() {
        let opts = HuntOptions::default();
        let out = minimize(&padded_disagree(), &opts).unwrap();
        assert_eq!(out.removed_routers, 1);
        assert_eq!(out.spec.routers, 4);
        assert_eq!(out.verdict.class, OscillationClass::Transient);
        let recheck = classify_spec(&out.spec, &opts).unwrap();
        assert_eq!(recheck.class, OscillationClass::Transient);
    }

    #[test]
    fn minimal_specs_come_back_unchanged() {
        let mut spec = padded_disagree();
        // Drop the padding by hand: the 4-router disagree gadget is
        // already 1-minimal for the transient verdict.
        spec = remove_router(&spec, 4).unwrap();
        let out = minimize(&spec, &HuntOptions::default()).unwrap();
        assert_eq!(out.spec, spec);
        assert_eq!(
            out.removed_routers + out.removed_sessions + out.removed_exits,
            0
        );
    }

    #[test]
    fn inconclusive_baselines_are_returned_unchanged() {
        let spec = padded_disagree();
        let opts = HuntOptions {
            max_states: 2,
            ..HuntOptions::default()
        };
        let out = minimize(&spec, &opts).unwrap();
        assert_eq!(out.spec, spec);
        assert_eq!(out.verdict.class, OscillationClass::Unknown);
        assert_eq!(out.reclassifications, 1);
    }

    #[test]
    fn remove_router_renumbers_consistently() {
        let spec = padded_disagree();
        let out = remove_router(&spec, 2).unwrap();
        assert_eq!(out.routers, 4);
        // Old router 3 became 2, old 4 became 3.
        assert!(out.links.contains(&(0, 2, 1)), "{:?}", out.links);
        assert!(out.links.contains(&(0, 3, 1)), "{:?}", out.links);
        assert_eq!(out.exits.len(), 1);
        assert_eq!(out.exits[0].at, 2);
        match &out.kind {
            SpecKind::Reflection(r) => {
                assert_eq!(r.clusters, vec![(vec![0], vec![3]), (vec![1], vec![2])]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
