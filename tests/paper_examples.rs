//! End-to-end integration: every figure of the paper exercised through
//! the public `ibgp` facade, across crates (scenarios → engines →
//! analyses → reports).

use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::{all_scenarios, by_name};
use ibgp::{ExploreOptions, Network, OscillationClass, ProtocolVariant, SelectionPolicy};

const MAX_STATES: usize = 500_000;

fn class_of(name: &str, variant: ProtocolVariant) -> OscillationClass {
    let s = by_name(name).expect("scenario exists");
    Network::from_scenario(&s, variant)
        .classify(ExploreOptions::new().max_states(MAX_STATES))
        .0
}

#[test]
fn fig1a_verdict_matrix() {
    assert_eq!(
        class_of("fig1a", ProtocolVariant::Standard),
        OscillationClass::Persistent
    );
    assert_eq!(
        class_of("fig1a", ProtocolVariant::Walton),
        OscillationClass::Stable
    );
    assert_eq!(
        class_of("fig1a", ProtocolVariant::Modified),
        OscillationClass::Stable
    );
}

#[test]
fn fig1b_depends_on_rule_order() {
    let s = by_name("fig1b").unwrap();
    let paper = Network::from_scenario(&s, ProtocolVariant::Standard);
    assert_eq!(
        paper
            .classify(ExploreOptions::new().max_states(MAX_STATES))
            .0,
        OscillationClass::Stable
    );
    let rfc = paper.with_config(ProtocolConfig {
        variant: ProtocolVariant::Standard,
        policy: SelectionPolicy::RFC1771,
    });
    assert_eq!(
        rfc.classify(ExploreOptions::new().max_states(MAX_STATES)).0,
        OscillationClass::Persistent
    );
}

#[test]
fn fig2_verdict_matrix() {
    assert_eq!(
        class_of("fig2", ProtocolVariant::Standard),
        OscillationClass::Transient
    );
    assert_eq!(
        class_of("fig2", ProtocolVariant::Walton),
        OscillationClass::Transient
    );
    assert_eq!(
        class_of("fig2", ProtocolVariant::Modified),
        OscillationClass::Stable
    );
}

#[test]
fn fig13_defeats_walton_but_not_modified() {
    assert_eq!(
        class_of("fig13", ProtocolVariant::Walton),
        OscillationClass::Persistent
    );
    assert_eq!(
        class_of("fig13", ProtocolVariant::Modified),
        OscillationClass::Stable
    );
}

#[test]
fn fig14_loop_matrix() {
    let s = by_name("fig14").unwrap();
    for (variant, loops_expected) in [
        (ProtocolVariant::Standard, true),
        (ProtocolVariant::Walton, true),
        (ProtocolVariant::Modified, false),
    ] {
        let loops = Network::from_scenario(&s, variant).forwarding_loops_after_convergence(10_000);
        assert_eq!(!loops.is_empty(), loops_expected, "{variant}");
    }
}

#[test]
fn modified_protocol_stabilizes_every_figure() {
    for s in all_scenarios() {
        let n = Network::from_scenario(&s, ProtocolVariant::Modified);
        let r = n.converge(100_000);
        assert!(r.converged(), "{}: {:?}", s.name, r.outcome);
        // And the outcome is schedule-independent.
        assert!(
            n.determinism(6, 100_000).deterministic(),
            "{} not deterministic",
            s.name
        );
    }
}

#[test]
fn standard_protocol_fails_on_exactly_the_oscillating_figures() {
    let expectations = [
        ("fig1a", OscillationClass::Persistent),
        ("fig1b", OscillationClass::Stable),
        ("fig2", OscillationClass::Transient),
        ("fig3", OscillationClass::Stable), // needs injection timing; see E4
        ("fig12", OscillationClass::Stable),
        ("fig13", OscillationClass::Persistent),
        ("fig14", OscillationClass::Stable), // stable but loops (E7)
    ];
    for (name, expected) in expectations {
        assert_eq!(
            class_of(name, ProtocolVariant::Standard),
            expected,
            "{name}"
        );
    }
}

#[test]
fn experiment_report_renders_for_a_real_run() {
    let s = by_name("fig1a").unwrap();
    let class = Network::from_scenario(&s, ProtocolVariant::Standard)
        .classify(ExploreOptions::new().max_states(MAX_STATES))
        .0;
    let row = ibgp::ExperimentRow::new(
        "E1",
        "Fig 1(a)",
        "persistent oscillation",
        class.to_string(),
        class == OscillationClass::Persistent,
    );
    let table = ibgp::render_table(std::slice::from_ref(&row));
    assert!(table.contains("reproduced"), "{table}");
}
