//! The §10 future-work feature end-to-end: routers run standard I-BGP
//! until their local oscillation detector fires, then upgrade themselves
//! to `Choose_set` advertisement. Persistent oscillations self-heal;
//! quiet configurations never pay the extra advertisement cost.

use ibgp::scenarios::{fig13, fig14, fig1a};
use ibgp::sim::{AdaptivePolicy, FixedDelay};
use ibgp::{Network, ProtocolVariant};

const POLICY: AdaptivePolicy = AdaptivePolicy {
    threshold: 8,
    window: 200,
};

#[test]
fn fig1a_self_heals_under_the_adaptive_trigger() {
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);

    // Control: without the trigger the run never quiesces.
    let mut plain = n.async_sim(Box::new(FixedDelay(3)));
    plain.start();
    assert!(!plain.run(20_000).quiescent());

    // With the trigger: the flapping reflectors upgrade and the system
    // quiesces.
    let mut sim = n.async_sim(Box::new(FixedDelay(3)));
    sim.set_adaptive(POLICY);
    sim.start();
    let outcome = sim.run(200_000);
    assert!(outcome.quiescent(), "{outcome}");
    let upgraded = sim.upgraded_routers();
    assert!(
        !upgraded.is_empty(),
        "someone must have detected the flapping"
    );
    // The oscillation lives between the reflectors; at least one of them
    // upgraded.
    assert!(
        upgraded.contains(&fig1a::nodes::A) || upgraded.contains(&fig1a::nodes::B),
        "{upgraded:?}"
    );
}

#[test]
fn fig13_self_heals_even_though_walton_cannot_fix_it() {
    let s = fig13::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut sim = n.async_sim(Box::new(FixedDelay(2)));
    sim.set_adaptive(POLICY);
    sim.start();
    let outcome = sim.run(300_000);
    assert!(outcome.quiescent(), "{outcome}");
    assert!(!sim.upgraded_routers().is_empty());
}

#[test]
fn quiet_configurations_never_upgrade() {
    // Fig 14 converges under standard I-BGP (its problem is forwarding
    // loops, not churn): the detector must stay silent and the routers
    // must keep single-best advertisement.
    let s = fig14::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut sim = n.async_sim(Box::new(FixedDelay(2)));
    sim.set_adaptive(POLICY);
    sim.start();
    assert!(sim.run(100_000).quiescent());
    assert!(sim.upgraded_routers().is_empty());
}

#[test]
fn forced_upgrade_event_converts_a_router() {
    let s = fig14::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut sim = n.async_sim(Box::new(FixedDelay(2)));
    sim.set_adaptive(POLICY);
    sim.start();
    assert!(sim.run(100_000).quiescent());
    // Force-upgrade both reflectors: the loop of Fig 14 disappears
    // because clients now hear both routes.
    let t = sim.now();
    sim.schedule(
        t + 1,
        ibgp::sim::AsyncEvent::AdaptiveUpgrade {
            node: fig14::nodes::RR1,
        },
    );
    sim.schedule(
        t + 2,
        ibgp::sim::AsyncEvent::AdaptiveUpgrade {
            node: fig14::nodes::RR2,
        },
    );
    assert!(sim.run(100_000).quiescent());
    assert_eq!(sim.upgraded_routers().len(), 2);
    // Clients now pick the nearer (foreign) exits, as under Modified.
    assert_eq!(sim.best_exit(fig14::nodes::C1), Some(fig14::routes::R2));
    assert_eq!(sim.best_exit(fig14::nodes::C2), Some(fig14::routes::R1));
}

#[test]
fn crashed_routers_downgrade_and_redetect() {
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut sim = n.async_sim(Box::new(FixedDelay(3)));
    sim.set_adaptive(POLICY);
    sim.start();
    assert!(sim.run(200_000).quiescent());
    let upgraded_before = sim.upgraded_routers();
    assert!(!upgraded_before.is_empty());

    // Crash an upgraded router: it forgets its upgrade…
    let victim = upgraded_before[0];
    let t = sim.now();
    sim.schedule(t + 1, ibgp::sim::AsyncEvent::NodeDown { node: victim });
    sim.schedule(t + 30, ibgp::sim::AsyncEvent::NodeUp { node: victim });
    let outcome = sim.run(400_000);
    // …and the system either re-converges quietly or re-detects and
    // re-upgrades; both end quiescent.
    assert!(outcome.quiescent(), "{outcome}");
}
