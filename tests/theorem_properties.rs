//! The §7 theorems as property tests: on *arbitrary* route-reflection
//! configurations, the modified protocol converges, to a unique fixed
//! point, with `GoodExits = S′` everywhere, loop-free forwarding, and
//! clean flushing. This is the paper's main result exercised as a
//! falsifiable property.

use ibgp::scenarios::random::{random_scenario, RandomConfig};
use ibgp::theorems::verify_paper_theorems;
use ibgp::{Network, ProtocolVariant};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = (RandomConfig, u64)> {
    (
        1usize..=4,   // clusters
        0usize..=3,   // clients per cluster
        1usize..=6,   // exits
        1usize..=3,   // neighbor ASes
        0u32..=10,    // max MED
        1u64..=10,    // max cost
        0usize..=4,   // extra links
        any::<u64>(), // seed
    )
        .prop_map(|(clusters, clients, exits, ases, med, cost, extra, seed)| {
            (
                RandomConfig {
                    clusters,
                    clients_per_cluster: clients,
                    exits,
                    neighbor_ases: ases,
                    max_med: med,
                    max_cost: cost,
                    extra_links: extra,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Theorem (§7): the modified protocol converges on every
    /// configuration, to the same fixed point under every fair schedule,
    /// with S′ advertised everywhere, loop-free, and flush-clean.
    #[test]
    fn modified_protocol_theorems_hold((cfg, seed) in arb_config()) {
        let scenario = random_scenario(cfg, seed);
        let network = Network::from_scenario(&scenario, ProtocolVariant::Modified);
        let report = verify_paper_theorems(&network, 3, 200_000);
        prop_assert!(report.all_hold(), "{report:?}");
    }

    /// The async engine agrees with the sync engine's fixed point for the
    /// modified protocol (the theorems don't depend on the engine).
    #[test]
    fn engines_agree_on_the_modified_fixed_point((cfg, seed) in arb_config()) {
        let scenario = random_scenario(cfg, seed);
        let network = Network::from_scenario(&scenario, ProtocolVariant::Modified);
        let sync = network.converge(200_000);
        prop_assert!(sync.converged());
        let (outcome, async_bests, _) =
            network.quiesce(Box::new(ibgp::sim::FixedDelay(2)), 0, 2_000_000);
        prop_assert!(outcome.quiescent(), "{outcome}");
        prop_assert_eq!(&sync.best_exits, &async_bests);
    }
}
