//! The committed `npc-1var` corpus specimen is exactly the §5 reduction
//! of the one-variable, one-clause formula `{x}` — pinned byte-for-byte
//! so neither the reduction nor the `.ibgp` printer can drift away from
//! the file the POR golden suite classifies.

use ibgp::hunt::spec::ScenarioSpec;
use ibgp::npc::{reduce, Clause, Formula, Lit};
use ibgp::{ProtocolVariant, Scenario};

#[test]
fn npc_1var_specimen_is_the_printed_reduction_of_x() {
    let formula = Formula::new(1, vec![Clause(vec![Lit::pos(0)])]).unwrap();
    let sr = reduce(&formula);
    let scenario = Scenario {
        name: "npc-1var",
        description: "§5 SR_J reduction of the satisfiable formula {x}",
        topology: sr.topology,
        exits: sr.exits,
    };
    let spec = ScenarioSpec::from_scenario(&scenario, ProtocolVariant::Standard);
    let printed = ibgp::hunt::print(&spec);

    let path = format!(
        "{}/corpus/specimens/npc-1var.ibgp",
        env!("CARGO_MANIFEST_DIR")
    );
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        printed, committed,
        "corpus/specimens/npc-1var.ibgp drifted from the §5 reduction"
    );
}
