//! Integration: the §5 reduction's defining equivalence
//! `J satisfiable ⟺ SR_J can stabilize`, checked against DPLL over a
//! corpus of formulas including hand-built unsatisfiable ones.

use ibgp::npc::{check_equivalence, reduce, solve, Clause, Formula, Lit};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::sim::{Engine, RandomFair, SyncEngine};

#[test]
fn random_corpus_agrees_with_dpll() {
    for seed in 0..12 {
        let formula = Formula::random(seed, 3, 5);
        let report = check_equivalence(&formula, 300_000);
        assert!(report.ok(), "seed {seed} ({formula}): {report:?}");
    }
}

#[test]
fn bigger_satisfiable_formulas_stabilize() {
    for seed in 100..106 {
        let formula = Formula::random(seed, 5, 8);
        if solve(&formula).is_some() {
            let report = check_equivalence(&formula, 500_000);
            assert!(report.ok(), "seed {seed} ({formula}): {report:?}");
        }
    }
}

#[test]
fn pigeonhole_style_unsat_has_no_stable_configuration() {
    // (x0∨x1)(x0∨¬x1)(¬x0∨x1)(¬x0∨¬x1)
    let formula = Formula::new(
        2,
        vec![
            Clause(vec![Lit::pos(0), Lit::pos(1)]),
            Clause(vec![Lit::pos(0), Lit::neg(1)]),
            Clause(vec![Lit::neg(0), Lit::pos(1)]),
            Clause(vec![Lit::neg(0), Lit::neg(1)]),
        ],
    )
    .unwrap();
    assert!(solve(&formula).is_none());
    let report = check_equivalence(&formula, 300_000);
    assert!(report.ok(), "{report:?}");
    assert_eq!(report.schedules_tried, 4);
}

#[test]
fn unsat_reduction_cycles_under_unbiased_fair_schedules_too() {
    // Not just the orientation-driving schedules: random fair activation
    // over the whole unsat instance must never stabilize.
    let formula = Formula::new(
        1,
        vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
    )
    .unwrap();
    let sr = reduce(&formula);
    for seed in 0..5 {
        let mut engine = SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
        let outcome = engine.run(&mut RandomFair::new(seed), 30_000);
        assert!(
            !outcome.converged(),
            "seed {seed}: unsat instance stabilized: {outcome}"
        );
    }
}

#[test]
fn reduction_size_is_linear_in_formula_size() {
    for (v, c) in [(3usize, 3usize), (6, 12), (10, 30)] {
        let formula = Formula::random(1, v, c);
        let sr = reduce(&formula);
        assert_eq!(sr.node_count(), 1 + 4 * v + 5 * c);
        assert_eq!(sr.exits.len(), 2 * v + 3 * c);
        assert!(sr.topology.physical().is_connected());
    }
}
