//! Property tests for the extension conjectures the paper leaves open:
//! the `Choose_set` advertisement discipline converges — and converges
//! deterministically — beyond the two-level route-reflection model its
//! §7 proof covers: on arbitrary cluster *trees* and on arbitrary
//! (possibly cyclic) confederation sub-AS graphs.

use ibgp::confed::{random_confederation, ConfedEngine, ConfedMode, RandomConfedConfig};
use ibgp::hierarchy::{random_hierarchy, HierEngine, HierMode, RandomHierConfig};
use proptest::prelude::*;

fn hier_cfg() -> impl Strategy<Value = (RandomHierConfig, u64)> {
    (
        2usize..=10,
        1usize..=3,
        1usize..=6,
        1usize..=3,
        0u32..=10,
        any::<u64>(),
    )
        .prop_map(|(routers, depth, exits, ases, med, seed)| {
            (
                RandomHierConfig {
                    routers,
                    max_depth: depth,
                    exits,
                    neighbor_ases: ases,
                    max_med: med,
                    max_cost: 10,
                },
                seed,
            )
        })
}

fn confed_cfg() -> impl Strategy<Value = (RandomConfedConfig, u64)> {
    (
        1usize..=4,
        1usize..=3,
        0usize..=3,
        1usize..=6,
        1usize..=3,
        0u32..=10,
        any::<u64>(),
    )
        .prop_map(|(subs, per, extra, exits, ases, med, seed)| {
            (
                RandomConfedConfig {
                    sub_ases: subs,
                    routers_per_sub_as: per,
                    extra_confed_links: extra,
                    exits,
                    neighbor_ases: ases,
                    max_med: med,
                    max_cost: 10,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Conjecture H: set advertisement converges on arbitrary hierarchies.
    #[test]
    fn hierarchy_set_advertisement_converges((cfg, seed) in hier_cfg()) {
        let (topo, exits) = random_hierarchy(cfg, seed);
        let mut eng = HierEngine::new(&topo, HierMode::SetAdvertisement, exits);
        let out = eng.run_round_robin(300_000);
        prop_assert!(out.converged(), "{out} at depth {}", topo.depth());
    }

    /// Conjecture C: set advertisement converges on arbitrary
    /// confederations, including cyclic sub-AS graphs.
    #[test]
    fn confed_set_advertisement_converges((cfg, seed) in confed_cfg()) {
        let (topo, exits) = random_confederation(cfg, seed);
        let mut eng = ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits);
        let out = eng.run_round_robin(300_000);
        prop_assert!(out.converged(), "{out}");
    }
}

/// Determinism probe for the hierarchy engine: the fixed point reached
/// under round-robin equals the one reached after randomized single-step
/// orders (simulated by running from scratch with a rotated id space is
/// not possible here, so we compare against the full-activation sweep).
#[test]
fn hierarchy_fixed_point_is_schedule_insensitive() {
    for seed in 0..12u64 {
        let (topo, exits) = random_hierarchy(RandomHierConfig::default(), seed);
        let mut a = HierEngine::new(&topo, HierMode::SetAdvertisement, exits.clone());
        assert!(a.run_round_robin(300_000).converged(), "seed {seed}");

        // Full-sweep schedule: everyone at once, until stable.
        let mut b = HierEngine::new(&topo, HierMode::SetAdvertisement, exits);
        let all: Vec<_> = topo.routers().collect();
        for _ in 0..10_000 {
            if b.is_stable() {
                break;
            }
            b.step(&all);
        }
        assert!(b.is_stable(), "seed {seed}: sweep did not stabilize");
        assert_eq!(a.best_vector(), b.best_vector(), "seed {seed}");
    }
}

/// Same probe for confederations — with a twist discovered by this very
/// test: under *simultaneous* sweeps on cyclic sub-AS graphs, the strict
/// engine state need not reach a fixed point even though every router's
/// chosen route does. What oscillates is only bookkeeping: when a route
/// reaches a sub-AS along several AS_CONFED paths, equal-preference
/// copies with different `visited` lists can alternate forever in the
/// Adj-RIB while the selected exit never changes. The assertion below is
/// therefore at the *routing* level: the best-exit vector must become
/// constant and equal the round-robin fixed point.
#[test]
fn confed_routing_is_schedule_insensitive_even_when_metadata_churns() {
    for seed in 0..12u64 {
        let (topo, exits) = random_confederation(RandomConfedConfig::default(), seed);
        let mut a = ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits.clone());
        assert!(a.run_round_robin(300_000).converged(), "seed {seed}");

        let mut b = ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits);
        let all: Vec<_> = topo.routers().collect();
        // Let the sweep run well past routing convergence…
        for _ in 0..200 {
            b.step(&all);
        }
        // …then require the best vector to be constant across further
        // sweeps and equal to the round-robin fixed point.
        let settled = b.best_vector();
        for _ in 0..20 {
            b.step(&all);
            assert_eq!(b.best_vector(), settled, "seed {seed}: routing churned");
        }
        assert_eq!(a.best_vector(), settled, "seed {seed}: schedules disagree");
    }
}
