//! Property tests for the decision process (rules of §2) through the
//! public API: totality, membership, determinism, idempotence, and the
//! per-rule dominance invariants.

use ibgp::proto::{choose_best, choose_set, MedMode, SelectionPolicy};
use ibgp::{
    AsId, BgpId, ExitPath, ExitPathId, ExitPathRef, IgpCost, LocalPref, Med, Route, RouterId,
};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Cand {
    local_pref: u32,
    as_path_len: usize,
    next_as: u32,
    med: u32,
    igp: u64,
    exit_cost: u64,
    learned_from: u32,
    own: bool,
}

fn arb_cand() -> impl Strategy<Value = Cand> {
    (
        90u32..=110,
        1usize..=3,
        1u32..=3,
        0u32..=5,
        0u64..=20,
        0u64..=5,
        0u32..=30,
        any::<bool>(),
    )
        .prop_map(
            |(local_pref, as_path_len, next_as, med, igp, exit_cost, learned_from, own)| Cand {
                local_pref,
                as_path_len,
                next_as,
                med,
                igp,
                exit_cost,
                learned_from,
                own,
            },
        )
}

const NODE: RouterId = RouterId(999);

fn materialize(cands: &[Cand]) -> Vec<Route> {
    cands
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let exit: ExitPathRef = Arc::new(
                ExitPath::builder(ExitPathId::new(i as u32 + 1))
                    .local_pref(LocalPref::new(c.local_pref))
                    .via_with_length(AsId::new(c.next_as), c.as_path_len)
                    .med(Med::new(c.med))
                    .exit_point(if c.own { NODE } else { RouterId::new(i as u32) })
                    .exit_cost(IgpCost::new(c.exit_cost))
                    .build_unchecked(),
            );
            let igp = if c.own { 0 } else { c.igp };
            Route::new(exit, NODE, IgpCost::new(igp), BgpId::new(c.learned_from))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Totality + membership: a non-empty candidate set always yields a
    /// winner, and the winner is one of the candidates.
    #[test]
    fn choose_best_is_total_and_member(cands in prop::collection::vec(arb_cand(), 1..12)) {
        let routes = materialize(&cands);
        let best = choose_best(SelectionPolicy::PAPER, &routes);
        prop_assert!(best.is_some());
        prop_assert!(routes.contains(&best.unwrap()));
    }

    /// Determinism under permutation.
    #[test]
    fn choose_best_is_order_independent(
        cands in prop::collection::vec(arb_cand(), 1..10),
        rotation in 0usize..10,
    ) {
        let routes = materialize(&cands);
        let mut rotated = routes.clone();
        rotated.rotate_left(rotation % routes.len().max(1));
        prop_assert_eq!(
            choose_best(SelectionPolicy::PAPER, &routes),
            choose_best(SelectionPolicy::PAPER, &rotated)
        );
    }

    /// Rule 1 dominance: the winner has the maximum LOCAL-PREF.
    #[test]
    fn winner_has_max_local_pref(cands in prop::collection::vec(arb_cand(), 1..12)) {
        let routes = materialize(&cands);
        let best = choose_best(SelectionPolicy::PAPER, &routes).unwrap();
        let max_lp = routes.iter().map(Route::local_pref).max().unwrap();
        prop_assert_eq!(best.local_pref(), max_lp);
    }

    /// Rule 3 soundness: the winner is never MED-dominated by another
    /// candidate through the same neighboring AS (with equal LP and path
    /// length — i.e. among rules-1/2 survivors).
    #[test]
    fn winner_is_not_med_dominated(cands in prop::collection::vec(arb_cand(), 1..12)) {
        let routes = materialize(&cands);
        let best = choose_best(SelectionPolicy::PAPER, &routes).unwrap();
        for r in &routes {
            if r.local_pref() == best.local_pref()
                && r.as_path_length() == best.as_path_length()
                && r.next_as() == best.next_as()
            {
                prop_assert!(r.med() >= best.med(), "{r} MED-dominates {best}");
            }
        }
    }

    /// Choose_set: idempotent, and choosing from the survivors gives the
    /// same best as choosing from everything (the modified protocol
    /// doesn't change local decisions, only what is advertised).
    #[test]
    fn choose_set_is_idempotent_and_selection_preserving(
        cands in prop::collection::vec(arb_cand(), 1..12)
    ) {
        let routes = materialize(&cands);
        let paths: Vec<ExitPathRef> = routes.iter().map(|r| r.exit().clone()).collect();
        let set = choose_set(&paths, MedMode::PerNeighborAs);
        let set2 = choose_set(&set, MedMode::PerNeighborAs);
        prop_assert_eq!(&set, &set2);

        let survivor_routes: Vec<Route> = routes
            .iter()
            .filter(|r| set.iter().any(|p| p.id() == r.exit_id()))
            .cloned()
            .collect();
        prop_assert_eq!(
            choose_best(SelectionPolicy::PAPER, &routes),
            choose_best(SelectionPolicy::PAPER, &survivor_routes)
        );
    }

    /// E-BGP preference (paper order): if any E-BGP route survives rules
    /// 1-3, the winner is E-BGP.
    #[test]
    fn ebgp_preference_holds(cands in prop::collection::vec(arb_cand(), 1..12)) {
        let routes = materialize(&cands);
        let paths: Vec<ExitPathRef> = routes.iter().map(|r| r.exit().clone()).collect();
        let survivors = choose_set(&paths, MedMode::PerNeighborAs);
        let any_ebgp_survivor = routes.iter().any(|r| {
            r.is_ebgp() && survivors.iter().any(|p| p.id() == r.exit_id())
        });
        let best = choose_best(SelectionPolicy::PAPER, &routes).unwrap();
        if any_ebgp_survivor {
            prop_assert!(best.is_ebgp(), "I-BGP {best} beat a surviving E-BGP route");
        }
    }
}
