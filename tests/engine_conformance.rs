//! [`Engine`] conformance suite: every synchronous engine in the
//! workspace — `SyncEngine` (two-level route reflection), `ConfedEngine`
//! (sub-AS confederations), and `HierEngine` (deep reflection
//! hierarchies) — must honor the same observable contract, checked here
//! by one generic battery run against all three:
//!
//! * lockstep determinism: identical activation scripts produce
//!   identical state keys, best vectors, and verdicts;
//! * `step` reports the **pre-step** fixed-point verdict and agrees with
//!   `is_stable`;
//! * `state_key` is pure and embeds the schedule phase;
//! * the default `run` converges on convergent configurations and leaves
//!   the engine at a genuine fixed point — invariant under any further
//!   activation.

use ibgp::confed::{random_confederation, ConfedEngine, ConfedMode, RandomConfedConfig};
use ibgp::hierarchy::{random_hierarchy, HierEngine, HierMode, RandomHierConfig};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::random::{random_scenario, RandomConfig};
use ibgp::sim::{AllAtOnce, Engine, RoundRobin, SyncEngine};
use ibgp::RouterId;

/// The generic battery. `fresh` must return a brand-new engine over the
/// same (convergent) configuration each call.
fn check_conformance<E: Engine>(label: &str, mut fresh: impl FnMut() -> E) {
    let mut a = fresh();
    let mut b = fresh();
    let n = a.router_count();
    assert!(n >= 1, "{label}: engine reports no routers");
    assert_eq!(a.best_vector().len(), n, "{label}: best-vector length");

    // state_key is pure and phase-tagged.
    assert!(
        a.state_key(3) == a.state_key(3),
        "{label}: state_key is not pure"
    );
    assert!(
        a.state_key(0) != a.state_key(1),
        "{label}: state_key ignores the schedule phase"
    );

    // Lockstep determinism through a mixed singleton/full-set script.
    for step in 0..40u64 {
        let phase = step % 7;
        assert!(
            a.state_key(phase) == b.state_key(phase),
            "{label}: state keys diverge at step {step}"
        );
        assert_eq!(
            a.best_vector(),
            b.best_vector(),
            "{label}: best vectors diverge at step {step}"
        );
        let pre_stable = a.is_stable();
        assert_eq!(
            pre_stable,
            b.is_stable(),
            "{label}: stability verdicts diverge at step {step}"
        );
        let set: Vec<RouterId> = if step % 3 == 0 {
            (0..n as u32).map(RouterId::new).collect()
        } else {
            vec![RouterId::new((step % n as u64) as u32)]
        };
        let va = a.step(&set);
        let vb = b.step(&set);
        assert_eq!(
            va, pre_stable,
            "{label}: step must report the pre-step fixed-point verdict (step {step})"
        );
        assert_eq!(vb, pre_stable, "{label}: step verdicts diverge at {step}");
    }

    // The default `run` reaches a genuine fixed point…
    let mut c = fresh();
    let out = c.run(&mut RoundRobin::new(), 300_000);
    assert!(
        out.converged(),
        "{label}: round-robin did not converge: {out}"
    );
    assert!(c.is_stable(), "{label}: converged but not stable");
    let settled = c.best_vector();
    let key = c.state_key(0);

    // …which is invariant under any further activation.
    let all: Vec<RouterId> = (0..n as u32).map(RouterId::new).collect();
    assert!(c.step(&all), "{label}: fixed point not reported by step");
    assert_eq!(c.best_vector(), settled, "{label}: fixed point moved");
    assert!(
        c.state_key(0) == key,
        "{label}: state key changed at a fixed point"
    );

    // A second run from scratch lands on the same configuration (the §7
    // determinism property all three convergent modes share).
    let mut d = fresh();
    assert!(d.run(&mut RoundRobin::new(), 300_000).converged());
    assert_eq!(d.best_vector(), settled, "{label}: runs disagree");
}

#[test]
fn sync_engine_conforms() {
    for seed in 0..6u64 {
        let s = random_scenario(RandomConfig::default(), seed);
        check_conformance("sync/modified", || {
            SyncEngine::new(&s.topology, ProtocolConfig::MODIFIED, s.exits())
        });
    }
}

#[test]
fn confed_engine_conforms() {
    for seed in 0..6u64 {
        let (topo, exits) = random_confederation(RandomConfedConfig::default(), seed);
        check_conformance("confed/set-advertisement", || {
            ConfedEngine::new(&topo, ConfedMode::SetAdvertisement, exits.clone())
        });
    }
}

#[test]
fn hier_engine_conforms() {
    for seed in 0..6u64 {
        let (topo, exits) = random_hierarchy(RandomHierConfig::default(), seed);
        check_conformance("hier/set-advertisement", || {
            HierEngine::new(&topo, HierMode::SetAdvertisement, exits.clone())
        });
    }
}

/// The default `run` must also detect provable cycles: the Fig 2
/// DISAGREE shape under standard I-BGP oscillates forever under the
/// all-at-once schedule, and cycle detection proves it.
#[test]
fn default_run_detects_cycles() {
    let s = ibgp::scenarios::fig2::scenario();
    let mut eng = SyncEngine::new(&s.topology, ProtocolConfig::STANDARD, s.exits());
    let out = Engine::run(&mut eng, &mut AllAtOnce, 10_000);
    assert!(out.cycled(), "expected a provable cycle, got {out}");
}
