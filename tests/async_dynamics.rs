//! Integration: E-BGP churn, crashes, and timing through the
//! message-level engine, on paper scenarios, via the public facade.

use ibgp::scenarios::{fig1a, fig2};
use ibgp::sim::{AsyncEvent, FixedDelay, SeededJitter};
use ibgp::{ExitPathId, Network, ProtocolVariant, RouterId};

#[test]
fn fig1a_standard_oscillates_in_the_async_engine_as_well() {
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut sim = n.async_sim(Box::new(FixedDelay(3)));
    sim.start();
    let outcome = sim.run(20_000);
    assert!(!outcome.quiescent(), "{outcome}");
    assert!(sim.metrics().best_changes > 500);
}

#[test]
fn fig1a_modified_quiesces_and_matches_the_sync_engine() {
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    let sync = n.converge(100_000);
    assert!(sync.converged());
    for seed in 0..6 {
        let mut sim = n.async_sim(Box::new(SeededJitter::new(seed, 1, 11)));
        sim.start();
        assert!(sim.run(200_000).quiescent(), "seed {seed}");
        assert_eq!(sim.best_vector(), sync.best_exits, "seed {seed}");
    }
}

#[test]
fn withdrawing_the_winning_route_fails_over_and_back() {
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    let mut sim = n.async_sim(Box::new(FixedDelay(2)));
    sim.start();
    assert!(sim.run(100_000).quiescent());
    let a = RouterId::new(0);
    let r1 = ExitPathId::new(1);
    assert_eq!(sim.best_exit(a), Some(r1), "A settles on r1");

    // Withdraw r1: A must fall back to r3 (r2 stays MED-hidden by r3).
    let t = sim.now();
    sim.schedule(t + 1, AsyncEvent::Withdraw { id: r1 });
    assert!(sim.run(100_000).quiescent());
    assert_eq!(sim.best_exit(a), Some(ExitPathId::new(3)));

    // Re-inject r1: the original table returns (determinism across churn).
    let t = sim.now();
    let r1_path = s.exits[0].clone();
    sim.schedule(t + 1, AsyncEvent::Inject { path: r1_path });
    assert!(sim.run(100_000).quiescent());
    assert_eq!(sim.best_exit(a), Some(r1));
}

#[test]
fn crash_and_restart_returns_to_the_same_table_under_modified() {
    let s = fig2::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    for seed in 0..6u64 {
        let mut sim = n.async_sim(Box::new(SeededJitter::new(seed, 1, 9)));
        sim.set_mrai(16);
        sim.set_mrai_jitter(seed);
        sim.start();
        assert!(sim.run(100_000).quiescent(), "seed {seed}");
        let before = sim.best_vector();

        let t = sim.now();
        sim.schedule(
            t + 5,
            AsyncEvent::NodeDown {
                node: RouterId::new(0),
            },
        );
        sim.schedule(
            t + 50,
            AsyncEvent::NodeUp {
                node: RouterId::new(0),
            },
        );
        assert!(sim.run(300_000).quiescent(), "seed {seed}");
        assert_eq!(
            sim.best_vector(),
            before,
            "seed {seed}: table changed across crash"
        );
    }
}

#[test]
fn downed_reflector_cuts_its_clients_off() {
    let s = fig2::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Modified);
    let mut sim = n.async_sim(Box::new(FixedDelay(2)));
    sim.start();
    assert!(sim.run(100_000).quiescent());
    // Crash RR2 (router 1): its client c2 (router 3) keeps only its own
    // E-BGP route; the rest of the AS loses p2.
    let t = sim.now();
    sim.schedule(
        t + 1,
        AsyncEvent::NodeDown {
            node: RouterId::new(1),
        },
    );
    assert!(sim.run(100_000).quiescent());
    assert!(!sim.is_up(RouterId::new(1)));
    let p1 = ExitPathId::new(1);
    let p2 = ExitPathId::new(2);
    assert_eq!(
        sim.best_exit(RouterId::new(0)),
        Some(p1),
        "RR1 falls back to p1"
    );
    assert_eq!(
        sim.best_exit(RouterId::new(3)),
        Some(p2),
        "c2 keeps its own exit"
    );
}
