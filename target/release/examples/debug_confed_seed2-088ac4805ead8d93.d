/root/repo/target/release/examples/debug_confed_seed2-088ac4805ead8d93.d: examples/debug_confed_seed2.rs

/root/repo/target/release/examples/debug_confed_seed2-088ac4805ead8d93: examples/debug_confed_seed2.rs

examples/debug_confed_seed2.rs:
