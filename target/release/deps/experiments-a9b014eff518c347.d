/root/repo/target/release/deps/experiments-a9b014eff518c347.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-a9b014eff518c347: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
