/root/repo/target/release/deps/ibgp_scenarios-51cad1b5d69d8190.d: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

/root/repo/target/release/deps/libibgp_scenarios-51cad1b5d69d8190.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

/root/repo/target/release/deps/libibgp_scenarios-51cad1b5d69d8190.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/catalog.rs:
crates/scenarios/src/fig12.rs:
crates/scenarios/src/fig13.rs:
crates/scenarios/src/fig14.rs:
crates/scenarios/src/fig1a.rs:
crates/scenarios/src/fig1b.rs:
crates/scenarios/src/fig2.rs:
crates/scenarios/src/fig3.rs:
crates/scenarios/src/random.rs:
