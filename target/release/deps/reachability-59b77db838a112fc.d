/root/repo/target/release/deps/reachability-59b77db838a112fc.d: crates/bench/benches/reachability.rs

/root/repo/target/release/deps/reachability-59b77db838a112fc: crates/bench/benches/reachability.rs

crates/bench/benches/reachability.rs:
