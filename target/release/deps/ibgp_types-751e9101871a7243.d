/root/repo/target/release/deps/ibgp_types-751e9101871a7243.d: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

/root/repo/target/release/deps/libibgp_types-751e9101871a7243.rlib: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

/root/repo/target/release/deps/libibgp_types-751e9101871a7243.rmeta: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

crates/types/src/lib.rs:
crates/types/src/as_path.rs:
crates/types/src/attrs.rs:
crates/types/src/error.rs:
crates/types/src/exit_path.rs:
crates/types/src/ids.rs:
crates/types/src/next_hop.rs:
crates/types/src/prefix.rs:
crates/types/src/route.rs:
