/root/repo/target/release/deps/ibgp_topology-686756994391fc2b.d: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

/root/repo/target/release/deps/libibgp_topology-686756994391fc2b.rlib: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

/root/repo/target/release/deps/libibgp_topology-686756994391fc2b.rmeta: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

crates/topology/src/lib.rs:
crates/topology/src/builder.rs:
crates/topology/src/error.rs:
crates/topology/src/logical.rs:
crates/topology/src/physical.rs:
crates/topology/src/spf.rs:
crates/topology/src/viz.rs:
