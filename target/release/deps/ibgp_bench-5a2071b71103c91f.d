/root/repo/target/release/deps/ibgp_bench-5a2071b71103c91f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libibgp_bench-5a2071b71103c91f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libibgp_bench-5a2071b71103c91f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
