/root/repo/target/release/deps/ibgp_analysis-64977feea62cea5c.d: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

/root/repo/target/release/deps/libibgp_analysis-64977feea62cea5c.rlib: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

/root/repo/target/release/deps/libibgp_analysis-64977feea62cea5c.rmeta: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

crates/analysis/src/lib.rs:
crates/analysis/src/determinism.rs:
crates/analysis/src/flush.rs:
crates/analysis/src/forwarding.rs:
crates/analysis/src/oscillation.rs:
crates/analysis/src/reachability.rs:
crates/analysis/src/stable.rs:
