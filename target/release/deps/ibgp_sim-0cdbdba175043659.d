/root/repo/target/release/deps/ibgp_sim-0cdbdba175043659.d: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

/root/repo/target/release/deps/libibgp_sim-0cdbdba175043659.rlib: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

/root/repo/target/release/deps/libibgp_sim-0cdbdba175043659.rmeta: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

crates/sim/src/lib.rs:
crates/sim/src/activation.rs:
crates/sim/src/async_engine/mod.rs:
crates/sim/src/async_engine/adaptive.rs:
crates/sim/src/async_engine/delay.rs:
crates/sim/src/async_engine/event.rs:
crates/sim/src/async_engine/trace.rs:
crates/sim/src/metrics.rs:
crates/sim/src/multi.rs:
crates/sim/src/signature.rs:
crates/sim/src/sync.rs:
