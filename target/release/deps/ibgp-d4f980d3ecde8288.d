/root/repo/target/release/deps/ibgp-d4f980d3ecde8288.d: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

/root/repo/target/release/deps/libibgp-d4f980d3ecde8288.rlib: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

/root/repo/target/release/deps/libibgp-d4f980d3ecde8288.rmeta: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

crates/core/src/lib.rs:
crates/core/src/network.rs:
crates/core/src/report.rs:
crates/core/src/theorems.rs:
