/root/repo/target/release/deps/serde-dbbc88ca13d9d64b.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dbbc88ca13d9d64b.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-dbbc88ca13d9d64b.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
