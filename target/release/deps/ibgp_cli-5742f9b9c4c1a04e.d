/root/repo/target/release/deps/ibgp_cli-5742f9b9c4c1a04e.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/ibgp_cli-5742f9b9c4c1a04e: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
