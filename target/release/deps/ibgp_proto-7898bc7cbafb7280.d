/root/repo/target/release/deps/ibgp_proto-7898bc7cbafb7280.d: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

/root/repo/target/release/deps/libibgp_proto-7898bc7cbafb7280.rlib: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

/root/repo/target/release/deps/libibgp_proto-7898bc7cbafb7280.rmeta: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

crates/proto/src/lib.rs:
crates/proto/src/levels.rs:
crates/proto/src/routes.rs:
crates/proto/src/selection/mod.rs:
crates/proto/src/selection/rules.rs:
crates/proto/src/selection/trace.rs:
crates/proto/src/transfer.rs:
crates/proto/src/variants.rs:
crates/proto/src/walton.rs:
