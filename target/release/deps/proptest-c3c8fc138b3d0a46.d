/root/repo/target/release/deps/proptest-c3c8fc138b3d0a46.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c3c8fc138b3d0a46.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c3c8fc138b3d0a46.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
