/root/repo/target/release/deps/serde_json-2dccef5e6a8f31d6.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-2dccef5e6a8f31d6.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-2dccef5e6a8f31d6.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
