/root/repo/target/release/deps/ibgp_confed-0ef153432e400921.d: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

/root/repo/target/release/deps/libibgp_confed-0ef153432e400921.rlib: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

/root/repo/target/release/deps/libibgp_confed-0ef153432e400921.rmeta: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

crates/confed/src/lib.rs:
crates/confed/src/announcement.rs:
crates/confed/src/engine.rs:
crates/confed/src/random.rs:
crates/confed/src/scenarios.rs:
crates/confed/src/search.rs:
crates/confed/src/topology.rs:
