/root/repo/target/release/deps/ibgp_hierarchy-cc463d39c90266e9.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

/root/repo/target/release/deps/libibgp_hierarchy-cc463d39c90266e9.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

/root/repo/target/release/deps/libibgp_hierarchy-cc463d39c90266e9.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/engine.rs:
crates/hierarchy/src/random.rs:
crates/hierarchy/src/scenarios.rs:
crates/hierarchy/src/search.rs:
crates/hierarchy/src/topology.rs:
