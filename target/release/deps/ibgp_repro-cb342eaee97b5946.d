/root/repo/target/release/deps/ibgp_repro-cb342eaee97b5946.d: src/lib.rs

/root/repo/target/release/deps/libibgp_repro-cb342eaee97b5946.rlib: src/lib.rs

/root/repo/target/release/deps/libibgp_repro-cb342eaee97b5946.rmeta: src/lib.rs

src/lib.rs:
