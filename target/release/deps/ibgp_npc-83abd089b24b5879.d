/root/repo/target/release/deps/ibgp_npc-83abd089b24b5879.d: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

/root/repo/target/release/deps/libibgp_npc-83abd089b24b5879.rlib: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

/root/repo/target/release/deps/libibgp_npc-83abd089b24b5879.rmeta: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

crates/npc/src/lib.rs:
crates/npc/src/dpll.rs:
crates/npc/src/extract.rs:
crates/npc/src/reduction.rs:
crates/npc/src/sat.rs:
crates/npc/src/verify.rs:
