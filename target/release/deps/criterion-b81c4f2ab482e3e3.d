/root/repo/target/release/deps/criterion-b81c4f2ab482e3e3.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b81c4f2ab482e3e3.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b81c4f2ab482e3e3.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
