/root/repo/target/debug/examples/find_fig13-a075da13b72a6b4f.d: crates/scenarios/examples/find_fig13.rs Cargo.toml

/root/repo/target/debug/examples/libfind_fig13-a075da13b72a6b4f.rmeta: crates/scenarios/examples/find_fig13.rs Cargo.toml

crates/scenarios/examples/find_fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
