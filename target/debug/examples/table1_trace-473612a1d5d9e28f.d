/root/repo/target/debug/examples/table1_trace-473612a1d5d9e28f.d: examples/table1_trace.rs

/root/repo/target/debug/examples/table1_trace-473612a1d5d9e28f: examples/table1_trace.rs

examples/table1_trace.rs:
