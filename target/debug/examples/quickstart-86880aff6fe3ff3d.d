/root/repo/target/debug/examples/quickstart-86880aff6fe3ff3d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-86880aff6fe3ff3d: examples/quickstart.rs

examples/quickstart.rs:
