/root/repo/target/debug/examples/extensions-db852acbbdfb6242.d: examples/extensions.rs

/root/repo/target/debug/examples/extensions-db852acbbdfb6242: examples/extensions.rs

examples/extensions.rs:
