/root/repo/target/debug/examples/crash_recovery-cc7405bc4bae1dd3.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-cc7405bc4bae1dd3: examples/crash_recovery.rs

examples/crash_recovery.rs:
