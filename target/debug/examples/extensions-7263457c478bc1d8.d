/root/repo/target/debug/examples/extensions-7263457c478bc1d8.d: examples/extensions.rs Cargo.toml

/root/repo/target/debug/examples/libextensions-7263457c478bc1d8.rmeta: examples/extensions.rs Cargo.toml

examples/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
