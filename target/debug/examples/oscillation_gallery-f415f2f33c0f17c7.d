/root/repo/target/debug/examples/oscillation_gallery-f415f2f33c0f17c7.d: examples/oscillation_gallery.rs Cargo.toml

/root/repo/target/debug/examples/liboscillation_gallery-f415f2f33c0f17c7.rmeta: examples/oscillation_gallery.rs Cargo.toml

examples/oscillation_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
