/root/repo/target/debug/examples/find_fig13-a2d2da8cfe01110c.d: crates/scenarios/examples/find_fig13.rs

/root/repo/target/debug/examples/find_fig13-a2d2da8cfe01110c: crates/scenarios/examples/find_fig13.rs

crates/scenarios/examples/find_fig13.rs:
