/root/repo/target/debug/examples/npc_reduction-428f09d706de2ebb.d: examples/npc_reduction.rs Cargo.toml

/root/repo/target/debug/examples/libnpc_reduction-428f09d706de2ebb.rmeta: examples/npc_reduction.rs Cargo.toml

examples/npc_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
