/root/repo/target/debug/examples/med_policies-633b5f602114f972.d: examples/med_policies.rs

/root/repo/target/debug/examples/med_policies-633b5f602114f972: examples/med_policies.rs

examples/med_policies.rs:
