/root/repo/target/debug/examples/med_policies-cc65e8eb21a9155d.d: examples/med_policies.rs Cargo.toml

/root/repo/target/debug/examples/libmed_policies-cc65e8eb21a9155d.rmeta: examples/med_policies.rs Cargo.toml

examples/med_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
