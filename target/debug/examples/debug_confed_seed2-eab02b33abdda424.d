/root/repo/target/debug/examples/debug_confed_seed2-eab02b33abdda424.d: examples/debug_confed_seed2.rs

/root/repo/target/debug/examples/debug_confed_seed2-eab02b33abdda424: examples/debug_confed_seed2.rs

examples/debug_confed_seed2.rs:
