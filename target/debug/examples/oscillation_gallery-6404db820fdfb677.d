/root/repo/target/debug/examples/oscillation_gallery-6404db820fdfb677.d: examples/oscillation_gallery.rs

/root/repo/target/debug/examples/oscillation_gallery-6404db820fdfb677: examples/oscillation_gallery.rs

examples/oscillation_gallery.rs:
