/root/repo/target/debug/examples/table1_trace-106cc421d458bf97.d: examples/table1_trace.rs Cargo.toml

/root/repo/target/debug/examples/libtable1_trace-106cc421d458bf97.rmeta: examples/table1_trace.rs Cargo.toml

examples/table1_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
