/root/repo/target/debug/examples/npc_reduction-4d24ef7872a4108d.d: examples/npc_reduction.rs

/root/repo/target/debug/examples/npc_reduction-4d24ef7872a4108d: examples/npc_reduction.rs

examples/npc_reduction.rs:
