/root/repo/target/debug/examples/crash_recovery-527efa8c50abfaeb.d: examples/crash_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_recovery-527efa8c50abfaeb.rmeta: examples/crash_recovery.rs Cargo.toml

examples/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
