/root/repo/target/debug/deps/flush-c521c6cda110444a.d: crates/bench/benches/flush.rs Cargo.toml

/root/repo/target/debug/deps/libflush-c521c6cda110444a.rmeta: crates/bench/benches/flush.rs Cargo.toml

crates/bench/benches/flush.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
