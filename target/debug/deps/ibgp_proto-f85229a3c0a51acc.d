/root/repo/target/debug/deps/ibgp_proto-f85229a3c0a51acc.d: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/selection/tests.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_proto-f85229a3c0a51acc.rmeta: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/selection/tests.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/levels.rs:
crates/proto/src/routes.rs:
crates/proto/src/selection/mod.rs:
crates/proto/src/selection/rules.rs:
crates/proto/src/selection/trace.rs:
crates/proto/src/selection/tests.rs:
crates/proto/src/transfer.rs:
crates/proto/src/variants.rs:
crates/proto/src/walton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
