/root/repo/target/debug/deps/ibgp_proto-9a0dd32e0d3305f0.d: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/selection/tests.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

/root/repo/target/debug/deps/ibgp_proto-9a0dd32e0d3305f0: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/selection/tests.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

crates/proto/src/lib.rs:
crates/proto/src/levels.rs:
crates/proto/src/routes.rs:
crates/proto/src/selection/mod.rs:
crates/proto/src/selection/rules.rs:
crates/proto/src/selection/trace.rs:
crates/proto/src/selection/tests.rs:
crates/proto/src/transfer.rs:
crates/proto/src/variants.rs:
crates/proto/src/walton.rs:
