/root/repo/target/debug/deps/async_dynamics-13c4b93caf01ac0c.d: tests/async_dynamics.rs

/root/repo/target/debug/deps/async_dynamics-13c4b93caf01ac0c: tests/async_dynamics.rs

tests/async_dynamics.rs:
