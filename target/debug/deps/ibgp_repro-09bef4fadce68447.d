/root/repo/target/debug/deps/ibgp_repro-09bef4fadce68447.d: src/lib.rs

/root/repo/target/debug/deps/ibgp_repro-09bef4fadce68447: src/lib.rs

src/lib.rs:
