/root/repo/target/debug/deps/ibgp_npc-66c06dec9fbc4e6e.d: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

/root/repo/target/debug/deps/libibgp_npc-66c06dec9fbc4e6e.rlib: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

/root/repo/target/debug/deps/libibgp_npc-66c06dec9fbc4e6e.rmeta: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

crates/npc/src/lib.rs:
crates/npc/src/dpll.rs:
crates/npc/src/extract.rs:
crates/npc/src/reduction.rs:
crates/npc/src/sat.rs:
crates/npc/src/verify.rs:
