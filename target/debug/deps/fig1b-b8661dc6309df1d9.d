/root/repo/target/debug/deps/fig1b-b8661dc6309df1d9.d: crates/bench/benches/fig1b.rs Cargo.toml

/root/repo/target/debug/deps/libfig1b-b8661dc6309df1d9.rmeta: crates/bench/benches/fig1b.rs Cargo.toml

crates/bench/benches/fig1b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
