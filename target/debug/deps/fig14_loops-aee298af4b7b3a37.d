/root/repo/target/debug/deps/fig14_loops-aee298af4b7b3a37.d: crates/bench/benches/fig14_loops.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_loops-aee298af4b7b3a37.rmeta: crates/bench/benches/fig14_loops.rs Cargo.toml

crates/bench/benches/fig14_loops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
