/root/repo/target/debug/deps/ibgp_proto-8cc70b7642bb957b.d: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

/root/repo/target/debug/deps/libibgp_proto-8cc70b7642bb957b.rlib: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

/root/repo/target/debug/deps/libibgp_proto-8cc70b7642bb957b.rmeta: crates/proto/src/lib.rs crates/proto/src/levels.rs crates/proto/src/routes.rs crates/proto/src/selection/mod.rs crates/proto/src/selection/rules.rs crates/proto/src/selection/trace.rs crates/proto/src/transfer.rs crates/proto/src/variants.rs crates/proto/src/walton.rs

crates/proto/src/lib.rs:
crates/proto/src/levels.rs:
crates/proto/src/routes.rs:
crates/proto/src/selection/mod.rs:
crates/proto/src/selection/rules.rs:
crates/proto/src/selection/trace.rs:
crates/proto/src/transfer.rs:
crates/proto/src/variants.rs:
crates/proto/src/walton.rs:
