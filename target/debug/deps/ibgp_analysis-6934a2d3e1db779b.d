/root/repo/target/debug/deps/ibgp_analysis-6934a2d3e1db779b.d: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

/root/repo/target/debug/deps/libibgp_analysis-6934a2d3e1db779b.rlib: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

/root/repo/target/debug/deps/libibgp_analysis-6934a2d3e1db779b.rmeta: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

crates/analysis/src/lib.rs:
crates/analysis/src/determinism.rs:
crates/analysis/src/flush.rs:
crates/analysis/src/forwarding.rs:
crates/analysis/src/oscillation.rs:
crates/analysis/src/reachability.rs:
crates/analysis/src/stable.rs:
