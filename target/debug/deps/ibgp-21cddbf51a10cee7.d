/root/repo/target/debug/deps/ibgp-21cddbf51a10cee7.d: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

/root/repo/target/debug/deps/ibgp-21cddbf51a10cee7: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

crates/core/src/lib.rs:
crates/core/src/network.rs:
crates/core/src/report.rs:
crates/core/src/theorems.rs:
