/root/repo/target/debug/deps/serde-a252169b9caba2be.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-a252169b9caba2be.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
