/root/repo/target/debug/deps/overhead-205e90733502e6cb.d: crates/bench/benches/overhead.rs Cargo.toml

/root/repo/target/debug/deps/liboverhead-205e90733502e6cb.rmeta: crates/bench/benches/overhead.rs Cargo.toml

crates/bench/benches/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
