/root/repo/target/debug/deps/ibgp_npc-4296fee0293386c0.d: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_npc-4296fee0293386c0.rmeta: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs Cargo.toml

crates/npc/src/lib.rs:
crates/npc/src/dpll.rs:
crates/npc/src/extract.rs:
crates/npc/src/reduction.rs:
crates/npc/src/sat.rs:
crates/npc/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
