/root/repo/target/debug/deps/serde_json-f595bf5d56e4e403.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f595bf5d56e4e403.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f595bf5d56e4e403.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
