/root/repo/target/debug/deps/confederations-f8ba0b8e4f80d6b0.d: crates/bench/benches/confederations.rs Cargo.toml

/root/repo/target/debug/deps/libconfederations-f8ba0b8e4f80d6b0.rmeta: crates/bench/benches/confederations.rs Cargo.toml

crates/bench/benches/confederations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
