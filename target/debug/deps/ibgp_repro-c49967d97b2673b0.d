/root/repo/target/debug/deps/ibgp_repro-c49967d97b2673b0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_repro-c49967d97b2673b0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
