/root/repo/target/debug/deps/ibgp_bench-ef4aaded13e266f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libibgp_bench-ef4aaded13e266f9.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libibgp_bench-ef4aaded13e266f9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
