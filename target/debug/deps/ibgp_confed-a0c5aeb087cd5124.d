/root/repo/target/debug/deps/ibgp_confed-a0c5aeb087cd5124.d: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_confed-a0c5aeb087cd5124.rmeta: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs Cargo.toml

crates/confed/src/lib.rs:
crates/confed/src/announcement.rs:
crates/confed/src/engine.rs:
crates/confed/src/random.rs:
crates/confed/src/scenarios.rs:
crates/confed/src/search.rs:
crates/confed/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
