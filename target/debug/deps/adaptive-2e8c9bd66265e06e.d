/root/repo/target/debug/deps/adaptive-2e8c9bd66265e06e.d: crates/bench/benches/adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive-2e8c9bd66265e06e.rmeta: crates/bench/benches/adaptive.rs Cargo.toml

crates/bench/benches/adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
