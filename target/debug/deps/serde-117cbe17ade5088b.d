/root/repo/target/debug/deps/serde-117cbe17ade5088b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-117cbe17ade5088b: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
