/root/repo/target/debug/deps/serde-2143b21c5bcd0c98.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2143b21c5bcd0c98.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2143b21c5bcd0c98.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
