/root/repo/target/debug/deps/spf_properties-b3f52ed685a6780f.d: crates/topology/tests/spf_properties.rs Cargo.toml

/root/repo/target/debug/deps/libspf_properties-b3f52ed685a6780f.rmeta: crates/topology/tests/spf_properties.rs Cargo.toml

crates/topology/tests/spf_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
