/root/repo/target/debug/deps/adaptive_upgrade-d903dde5247abbd4.d: tests/adaptive_upgrade.rs Cargo.toml

/root/repo/target/debug/deps/libadaptive_upgrade-d903dde5247abbd4.rmeta: tests/adaptive_upgrade.rs Cargo.toml

tests/adaptive_upgrade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
