/root/repo/target/debug/deps/extension_properties-faceaf4f15d54081.d: tests/extension_properties.rs

/root/repo/target/debug/deps/extension_properties-faceaf4f15d54081: tests/extension_properties.rs

tests/extension_properties.rs:
