/root/repo/target/debug/deps/spf-4d27c09db39aaf57.d: crates/bench/benches/spf.rs Cargo.toml

/root/repo/target/debug/deps/libspf-4d27c09db39aaf57.rmeta: crates/bench/benches/spf.rs Cargo.toml

crates/bench/benches/spf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
