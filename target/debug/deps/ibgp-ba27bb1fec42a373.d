/root/repo/target/debug/deps/ibgp-ba27bb1fec42a373.d: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

/root/repo/target/debug/deps/libibgp-ba27bb1fec42a373.rlib: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

/root/repo/target/debug/deps/libibgp-ba27bb1fec42a373.rmeta: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs

crates/core/src/lib.rs:
crates/core/src/network.rs:
crates/core/src/report.rs:
crates/core/src/theorems.rs:
