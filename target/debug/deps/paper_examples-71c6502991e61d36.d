/root/repo/target/debug/deps/paper_examples-71c6502991e61d36.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-71c6502991e61d36.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
