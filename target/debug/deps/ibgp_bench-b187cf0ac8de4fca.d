/root/repo/target/debug/deps/ibgp_bench-b187cf0ac8de4fca.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ibgp_bench-b187cf0ac8de4fca: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
