/root/repo/target/debug/deps/paper_examples-32111c4507cc548a.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-32111c4507cc548a: tests/paper_examples.rs

tests/paper_examples.rs:
