/root/repo/target/debug/deps/proptest-b1fa0ac0dbdf3eb5.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-b1fa0ac0dbdf3eb5.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
