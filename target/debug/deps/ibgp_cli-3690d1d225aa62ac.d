/root/repo/target/debug/deps/ibgp_cli-3690d1d225aa62ac.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_cli-3690d1d225aa62ac.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
