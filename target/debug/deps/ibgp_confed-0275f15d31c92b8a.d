/root/repo/target/debug/deps/ibgp_confed-0275f15d31c92b8a.d: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

/root/repo/target/debug/deps/ibgp_confed-0275f15d31c92b8a: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

crates/confed/src/lib.rs:
crates/confed/src/announcement.rs:
crates/confed/src/engine.rs:
crates/confed/src/random.rs:
crates/confed/src/scenarios.rs:
crates/confed/src/search.rs:
crates/confed/src/topology.rs:
