/root/repo/target/debug/deps/ibgp_confed-a7c10fbe40827dd4.d: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

/root/repo/target/debug/deps/libibgp_confed-a7c10fbe40827dd4.rlib: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

/root/repo/target/debug/deps/libibgp_confed-a7c10fbe40827dd4.rmeta: crates/confed/src/lib.rs crates/confed/src/announcement.rs crates/confed/src/engine.rs crates/confed/src/random.rs crates/confed/src/scenarios.rs crates/confed/src/search.rs crates/confed/src/topology.rs

crates/confed/src/lib.rs:
crates/confed/src/announcement.rs:
crates/confed/src/engine.rs:
crates/confed/src/random.rs:
crates/confed/src/scenarios.rs:
crates/confed/src/search.rs:
crates/confed/src/topology.rs:
