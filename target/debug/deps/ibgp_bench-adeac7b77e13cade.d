/root/repo/target/debug/deps/ibgp_bench-adeac7b77e13cade.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_bench-adeac7b77e13cade.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
