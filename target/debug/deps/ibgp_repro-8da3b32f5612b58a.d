/root/repo/target/debug/deps/ibgp_repro-8da3b32f5612b58a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_repro-8da3b32f5612b58a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
