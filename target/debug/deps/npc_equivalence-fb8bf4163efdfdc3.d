/root/repo/target/debug/deps/npc_equivalence-fb8bf4163efdfdc3.d: tests/npc_equivalence.rs

/root/repo/target/debug/deps/npc_equivalence-fb8bf4163efdfdc3: tests/npc_equivalence.rs

tests/npc_equivalence.rs:
