/root/repo/target/debug/deps/loop_freedom-9a40a5f5c85c59e9.d: crates/bench/benches/loop_freedom.rs Cargo.toml

/root/repo/target/debug/deps/libloop_freedom-9a40a5f5c85c59e9.rmeta: crates/bench/benches/loop_freedom.rs Cargo.toml

crates/bench/benches/loop_freedom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
