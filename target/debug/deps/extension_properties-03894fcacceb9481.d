/root/repo/target/debug/deps/extension_properties-03894fcacceb9481.d: tests/extension_properties.rs Cargo.toml

/root/repo/target/debug/deps/libextension_properties-03894fcacceb9481.rmeta: tests/extension_properties.rs Cargo.toml

tests/extension_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
