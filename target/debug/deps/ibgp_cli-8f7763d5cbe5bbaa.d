/root/repo/target/debug/deps/ibgp_cli-8f7763d5cbe5bbaa.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ibgp_cli-8f7763d5cbe5bbaa: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
