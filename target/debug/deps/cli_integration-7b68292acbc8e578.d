/root/repo/target/debug/deps/cli_integration-7b68292acbc8e578.d: crates/cli/tests/cli_integration.rs Cargo.toml

/root/repo/target/debug/deps/libcli_integration-7b68292acbc8e578.rmeta: crates/cli/tests/cli_integration.rs Cargo.toml

crates/cli/tests/cli_integration.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_ibgp-cli=placeholder:ibgp-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
