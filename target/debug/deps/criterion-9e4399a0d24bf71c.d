/root/repo/target/debug/deps/criterion-9e4399a0d24bf71c.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-9e4399a0d24bf71c: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
