/root/repo/target/debug/deps/fig1a-1197e5df6dbbf7fa.d: crates/bench/benches/fig1a.rs Cargo.toml

/root/repo/target/debug/deps/libfig1a-1197e5df6dbbf7fa.rmeta: crates/bench/benches/fig1a.rs Cargo.toml

crates/bench/benches/fig1a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
