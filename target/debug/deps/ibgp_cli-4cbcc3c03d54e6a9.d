/root/repo/target/debug/deps/ibgp_cli-4cbcc3c03d54e6a9.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/ibgp_cli-4cbcc3c03d54e6a9: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
