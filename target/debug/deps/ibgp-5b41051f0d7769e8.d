/root/repo/target/debug/deps/ibgp-5b41051f0d7769e8.d: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libibgp-5b41051f0d7769e8.rmeta: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/network.rs:
crates/core/src/report.rs:
crates/core/src/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
