/root/repo/target/debug/deps/ibgp_analysis-3ea5c73cdd135362.d: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_analysis-3ea5c73cdd135362.rmeta: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/determinism.rs:
crates/analysis/src/flush.rs:
crates/analysis/src/forwarding.rs:
crates/analysis/src/oscillation.rs:
crates/analysis/src/reachability.rs:
crates/analysis/src/stable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
