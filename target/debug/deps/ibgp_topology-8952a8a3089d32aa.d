/root/repo/target/debug/deps/ibgp_topology-8952a8a3089d32aa.d: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_topology-8952a8a3089d32aa.rmeta: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/builder.rs:
crates/topology/src/error.rs:
crates/topology/src/logical.rs:
crates/topology/src/physical.rs:
crates/topology/src/spf.rs:
crates/topology/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
