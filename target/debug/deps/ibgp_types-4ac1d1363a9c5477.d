/root/repo/target/debug/deps/ibgp_types-4ac1d1363a9c5477.d: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_types-4ac1d1363a9c5477.rmeta: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/as_path.rs:
crates/types/src/attrs.rs:
crates/types/src/error.rs:
crates/types/src/exit_path.rs:
crates/types/src/ids.rs:
crates/types/src/next_hop.rs:
crates/types/src/prefix.rs:
crates/types/src/route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
