/root/repo/target/debug/deps/async_dynamics-3f892c6c91eec59c.d: tests/async_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libasync_dynamics-3f892c6c91eec59c.rmeta: tests/async_dynamics.rs Cargo.toml

tests/async_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
