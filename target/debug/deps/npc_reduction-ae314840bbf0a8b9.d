/root/repo/target/debug/deps/npc_reduction-ae314840bbf0a8b9.d: crates/bench/benches/npc_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libnpc_reduction-ae314840bbf0a8b9.rmeta: crates/bench/benches/npc_reduction.rs Cargo.toml

crates/bench/benches/npc_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
