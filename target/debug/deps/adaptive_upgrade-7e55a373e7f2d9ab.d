/root/repo/target/debug/deps/adaptive_upgrade-7e55a373e7f2d9ab.d: tests/adaptive_upgrade.rs

/root/repo/target/debug/deps/adaptive_upgrade-7e55a373e7f2d9ab: tests/adaptive_upgrade.rs

tests/adaptive_upgrade.rs:
