/root/repo/target/debug/deps/spf_properties-8030fcb2665e48e9.d: crates/topology/tests/spf_properties.rs

/root/repo/target/debug/deps/spf_properties-8030fcb2665e48e9: crates/topology/tests/spf_properties.rs

crates/topology/tests/spf_properties.rs:
