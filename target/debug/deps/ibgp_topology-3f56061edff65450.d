/root/repo/target/debug/deps/ibgp_topology-3f56061edff65450.d: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

/root/repo/target/debug/deps/libibgp_topology-3f56061edff65450.rlib: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

/root/repo/target/debug/deps/libibgp_topology-3f56061edff65450.rmeta: crates/topology/src/lib.rs crates/topology/src/builder.rs crates/topology/src/error.rs crates/topology/src/logical.rs crates/topology/src/physical.rs crates/topology/src/spf.rs crates/topology/src/viz.rs

crates/topology/src/lib.rs:
crates/topology/src/builder.rs:
crates/topology/src/error.rs:
crates/topology/src/logical.rs:
crates/topology/src/physical.rs:
crates/topology/src/spf.rs:
crates/topology/src/viz.rs:
