/root/repo/target/debug/deps/fig13_walton-cd23e6082956e50d.d: crates/bench/benches/fig13_walton.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_walton-cd23e6082956e50d.rmeta: crates/bench/benches/fig13_walton.rs Cargo.toml

crates/bench/benches/fig13_walton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
