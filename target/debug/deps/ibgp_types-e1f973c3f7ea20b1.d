/root/repo/target/debug/deps/ibgp_types-e1f973c3f7ea20b1.d: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

/root/repo/target/debug/deps/ibgp_types-e1f973c3f7ea20b1: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

crates/types/src/lib.rs:
crates/types/src/as_path.rs:
crates/types/src/attrs.rs:
crates/types/src/error.rs:
crates/types/src/exit_path.rs:
crates/types/src/ids.rs:
crates/types/src/next_hop.rs:
crates/types/src/prefix.rs:
crates/types/src/route.rs:
