/root/repo/target/debug/deps/ibgp_hierarchy-dfb885182935036d.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

/root/repo/target/debug/deps/libibgp_hierarchy-dfb885182935036d.rlib: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

/root/repo/target/debug/deps/libibgp_hierarchy-dfb885182935036d.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/engine.rs:
crates/hierarchy/src/random.rs:
crates/hierarchy/src/scenarios.rs:
crates/hierarchy/src/search.rs:
crates/hierarchy/src/topology.rs:
