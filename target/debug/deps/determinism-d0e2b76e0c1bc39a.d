/root/repo/target/debug/deps/determinism-d0e2b76e0c1bc39a.d: crates/bench/benches/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-d0e2b76e0c1bc39a.rmeta: crates/bench/benches/determinism.rs Cargo.toml

crates/bench/benches/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
