/root/repo/target/debug/deps/ibgp_npc-244e0ccf8f841874.d: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

/root/repo/target/debug/deps/ibgp_npc-244e0ccf8f841874: crates/npc/src/lib.rs crates/npc/src/dpll.rs crates/npc/src/extract.rs crates/npc/src/reduction.rs crates/npc/src/sat.rs crates/npc/src/verify.rs

crates/npc/src/lib.rs:
crates/npc/src/dpll.rs:
crates/npc/src/extract.rs:
crates/npc/src/reduction.rs:
crates/npc/src/sat.rs:
crates/npc/src/verify.rs:
