/root/repo/target/debug/deps/npc_equivalence-e6688161d800efa3.d: tests/npc_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libnpc_equivalence-e6688161d800efa3.rmeta: tests/npc_equivalence.rs Cargo.toml

tests/npc_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
