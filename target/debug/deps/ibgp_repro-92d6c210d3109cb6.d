/root/repo/target/debug/deps/ibgp_repro-92d6c210d3109cb6.d: src/lib.rs

/root/repo/target/debug/deps/libibgp_repro-92d6c210d3109cb6.rlib: src/lib.rs

/root/repo/target/debug/deps/libibgp_repro-92d6c210d3109cb6.rmeta: src/lib.rs

src/lib.rs:
