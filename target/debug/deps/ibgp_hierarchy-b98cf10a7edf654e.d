/root/repo/target/debug/deps/ibgp_hierarchy-b98cf10a7edf654e.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_hierarchy-b98cf10a7edf654e.rmeta: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs Cargo.toml

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/engine.rs:
crates/hierarchy/src/random.rs:
crates/hierarchy/src/scenarios.rs:
crates/hierarchy/src/search.rs:
crates/hierarchy/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
