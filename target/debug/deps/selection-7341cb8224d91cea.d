/root/repo/target/debug/deps/selection-7341cb8224d91cea.d: crates/bench/benches/selection.rs Cargo.toml

/root/repo/target/debug/deps/libselection-7341cb8224d91cea.rmeta: crates/bench/benches/selection.rs Cargo.toml

crates/bench/benches/selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
