/root/repo/target/debug/deps/ibgp_hierarchy-8e9f0f72d6afca18.d: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

/root/repo/target/debug/deps/ibgp_hierarchy-8e9f0f72d6afca18: crates/hierarchy/src/lib.rs crates/hierarchy/src/engine.rs crates/hierarchy/src/random.rs crates/hierarchy/src/scenarios.rs crates/hierarchy/src/search.rs crates/hierarchy/src/topology.rs

crates/hierarchy/src/lib.rs:
crates/hierarchy/src/engine.rs:
crates/hierarchy/src/random.rs:
crates/hierarchy/src/scenarios.rs:
crates/hierarchy/src/search.rs:
crates/hierarchy/src/topology.rs:
