/root/repo/target/debug/deps/selection_properties-501fde8ae36c01b7.d: tests/selection_properties.rs

/root/repo/target/debug/deps/selection_properties-501fde8ae36c01b7: tests/selection_properties.rs

tests/selection_properties.rs:
