/root/repo/target/debug/deps/memo_equivalence-4a54babac508d611.d: crates/sim/tests/memo_equivalence.rs

/root/repo/target/debug/deps/memo_equivalence-4a54babac508d611: crates/sim/tests/memo_equivalence.rs

crates/sim/tests/memo_equivalence.rs:
