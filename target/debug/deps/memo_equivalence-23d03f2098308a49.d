/root/repo/target/debug/deps/memo_equivalence-23d03f2098308a49.d: crates/sim/tests/memo_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libmemo_equivalence-23d03f2098308a49.rmeta: crates/sim/tests/memo_equivalence.rs Cargo.toml

crates/sim/tests/memo_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
