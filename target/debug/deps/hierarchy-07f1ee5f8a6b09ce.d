/root/repo/target/debug/deps/hierarchy-07f1ee5f8a6b09ce.d: crates/bench/benches/hierarchy.rs Cargo.toml

/root/repo/target/debug/deps/libhierarchy-07f1ee5f8a6b09ce.rmeta: crates/bench/benches/hierarchy.rs Cargo.toml

crates/bench/benches/hierarchy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
