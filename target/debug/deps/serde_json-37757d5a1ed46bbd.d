/root/repo/target/debug/deps/serde_json-37757d5a1ed46bbd.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-37757d5a1ed46bbd: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
