/root/repo/target/debug/deps/reachability-fc9ab62019e9afd1.d: crates/bench/benches/reachability.rs Cargo.toml

/root/repo/target/debug/deps/libreachability-fc9ab62019e9afd1.rmeta: crates/bench/benches/reachability.rs Cargo.toml

crates/bench/benches/reachability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
