/root/repo/target/debug/deps/ibgp_analysis-ce97e4ebc3884311.d: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

/root/repo/target/debug/deps/ibgp_analysis-ce97e4ebc3884311: crates/analysis/src/lib.rs crates/analysis/src/determinism.rs crates/analysis/src/flush.rs crates/analysis/src/forwarding.rs crates/analysis/src/oscillation.rs crates/analysis/src/reachability.rs crates/analysis/src/stable.rs

crates/analysis/src/lib.rs:
crates/analysis/src/determinism.rs:
crates/analysis/src/flush.rs:
crates/analysis/src/forwarding.rs:
crates/analysis/src/oscillation.rs:
crates/analysis/src/reachability.rs:
crates/analysis/src/stable.rs:
