/root/repo/target/debug/deps/cli_integration-a529b910e0596c02.d: crates/cli/tests/cli_integration.rs

/root/repo/target/debug/deps/cli_integration-a529b910e0596c02: crates/cli/tests/cli_integration.rs

crates/cli/tests/cli_integration.rs:

# env-dep:CARGO_BIN_EXE_ibgp-cli=/root/repo/target/debug/ibgp-cli
