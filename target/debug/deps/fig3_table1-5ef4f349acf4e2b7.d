/root/repo/target/debug/deps/fig3_table1-5ef4f349acf4e2b7.d: crates/bench/benches/fig3_table1.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_table1-5ef4f349acf4e2b7.rmeta: crates/bench/benches/fig3_table1.rs Cargo.toml

crates/bench/benches/fig3_table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
