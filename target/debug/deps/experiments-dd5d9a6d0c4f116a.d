/root/repo/target/debug/deps/experiments-dd5d9a6d0c4f116a.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-dd5d9a6d0c4f116a: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
