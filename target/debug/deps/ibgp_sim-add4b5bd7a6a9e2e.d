/root/repo/target/debug/deps/ibgp_sim-add4b5bd7a6a9e2e.d: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

/root/repo/target/debug/deps/libibgp_sim-add4b5bd7a6a9e2e.rlib: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

/root/repo/target/debug/deps/libibgp_sim-add4b5bd7a6a9e2e.rmeta: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs

crates/sim/src/lib.rs:
crates/sim/src/activation.rs:
crates/sim/src/async_engine/mod.rs:
crates/sim/src/async_engine/adaptive.rs:
crates/sim/src/async_engine/delay.rs:
crates/sim/src/async_engine/event.rs:
crates/sim/src/async_engine/trace.rs:
crates/sim/src/metrics.rs:
crates/sim/src/multi.rs:
crates/sim/src/signature.rs:
crates/sim/src/sync.rs:
