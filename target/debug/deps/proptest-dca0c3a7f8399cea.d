/root/repo/target/debug/deps/proptest-dca0c3a7f8399cea.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-dca0c3a7f8399cea: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
