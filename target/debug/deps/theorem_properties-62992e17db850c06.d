/root/repo/target/debug/deps/theorem_properties-62992e17db850c06.d: tests/theorem_properties.rs

/root/repo/target/debug/deps/theorem_properties-62992e17db850c06: tests/theorem_properties.rs

tests/theorem_properties.rs:
