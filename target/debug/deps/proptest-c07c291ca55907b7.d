/root/repo/target/debug/deps/proptest-c07c291ca55907b7.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c07c291ca55907b7.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-c07c291ca55907b7.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
