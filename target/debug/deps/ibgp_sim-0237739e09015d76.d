/root/repo/target/debug/deps/ibgp_sim-0237739e09015d76.d: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/async_engine/tests.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_sim-0237739e09015d76.rmeta: crates/sim/src/lib.rs crates/sim/src/activation.rs crates/sim/src/async_engine/mod.rs crates/sim/src/async_engine/adaptive.rs crates/sim/src/async_engine/delay.rs crates/sim/src/async_engine/event.rs crates/sim/src/async_engine/trace.rs crates/sim/src/async_engine/tests.rs crates/sim/src/metrics.rs crates/sim/src/multi.rs crates/sim/src/signature.rs crates/sim/src/sync.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/activation.rs:
crates/sim/src/async_engine/mod.rs:
crates/sim/src/async_engine/adaptive.rs:
crates/sim/src/async_engine/delay.rs:
crates/sim/src/async_engine/event.rs:
crates/sim/src/async_engine/trace.rs:
crates/sim/src/async_engine/tests.rs:
crates/sim/src/metrics.rs:
crates/sim/src/multi.rs:
crates/sim/src/signature.rs:
crates/sim/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
