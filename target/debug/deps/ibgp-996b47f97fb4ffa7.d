/root/repo/target/debug/deps/ibgp-996b47f97fb4ffa7.d: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libibgp-996b47f97fb4ffa7.rmeta: crates/core/src/lib.rs crates/core/src/network.rs crates/core/src/report.rs crates/core/src/theorems.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/network.rs:
crates/core/src/report.rs:
crates/core/src/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
