/root/repo/target/debug/deps/ibgp_scenarios-11618d7465fe9dd0.d: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libibgp_scenarios-11618d7465fe9dd0.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs Cargo.toml

crates/scenarios/src/lib.rs:
crates/scenarios/src/catalog.rs:
crates/scenarios/src/fig12.rs:
crates/scenarios/src/fig13.rs:
crates/scenarios/src/fig14.rs:
crates/scenarios/src/fig1a.rs:
crates/scenarios/src/fig1b.rs:
crates/scenarios/src/fig2.rs:
crates/scenarios/src/fig3.rs:
crates/scenarios/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
