/root/repo/target/debug/deps/ibgp_types-30bcb1cf3ba039db.d: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

/root/repo/target/debug/deps/libibgp_types-30bcb1cf3ba039db.rlib: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

/root/repo/target/debug/deps/libibgp_types-30bcb1cf3ba039db.rmeta: crates/types/src/lib.rs crates/types/src/as_path.rs crates/types/src/attrs.rs crates/types/src/error.rs crates/types/src/exit_path.rs crates/types/src/ids.rs crates/types/src/next_hop.rs crates/types/src/prefix.rs crates/types/src/route.rs

crates/types/src/lib.rs:
crates/types/src/as_path.rs:
crates/types/src/attrs.rs:
crates/types/src/error.rs:
crates/types/src/exit_path.rs:
crates/types/src/ids.rs:
crates/types/src/next_hop.rs:
crates/types/src/prefix.rs:
crates/types/src/route.rs:
