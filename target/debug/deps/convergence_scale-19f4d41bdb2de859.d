/root/repo/target/debug/deps/convergence_scale-19f4d41bdb2de859.d: crates/bench/benches/convergence_scale.rs Cargo.toml

/root/repo/target/debug/deps/libconvergence_scale-19f4d41bdb2de859.rmeta: crates/bench/benches/convergence_scale.rs Cargo.toml

crates/bench/benches/convergence_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
