/root/repo/target/debug/deps/ibgp_scenarios-35bbc7271b156f67.d: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

/root/repo/target/debug/deps/libibgp_scenarios-35bbc7271b156f67.rlib: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

/root/repo/target/debug/deps/libibgp_scenarios-35bbc7271b156f67.rmeta: crates/scenarios/src/lib.rs crates/scenarios/src/catalog.rs crates/scenarios/src/fig12.rs crates/scenarios/src/fig13.rs crates/scenarios/src/fig14.rs crates/scenarios/src/fig1a.rs crates/scenarios/src/fig1b.rs crates/scenarios/src/fig2.rs crates/scenarios/src/fig3.rs crates/scenarios/src/random.rs

crates/scenarios/src/lib.rs:
crates/scenarios/src/catalog.rs:
crates/scenarios/src/fig12.rs:
crates/scenarios/src/fig13.rs:
crates/scenarios/src/fig14.rs:
crates/scenarios/src/fig1a.rs:
crates/scenarios/src/fig1b.rs:
crates/scenarios/src/fig2.rs:
crates/scenarios/src/fig3.rs:
crates/scenarios/src/random.rs:
