/root/repo/target/debug/deps/selection_properties-580a3d7dc6bd5865.d: tests/selection_properties.rs Cargo.toml

/root/repo/target/debug/deps/libselection_properties-580a3d7dc6bd5865.rmeta: tests/selection_properties.rs Cargo.toml

tests/selection_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
