//! The oscillation gallery: every figure of the paper, classified under
//! all three protocols by exhaustive reachability analysis.
//!
//! Run: `cargo run --release --example oscillation_gallery`

use ibgp::scenarios::all_scenarios;
use ibgp::{ExploreOptions, Network, ProtocolVariant};

fn main() {
    const MAX_STATES: usize = 500_000;
    println!(
        "{:<8} {:<9} {:>7} {:>7}  {:<34} description",
        "scenario", "protocol", "states", "stable", "classification"
    );
    for scenario in all_scenarios() {
        for variant in [
            ProtocolVariant::Standard,
            ProtocolVariant::Walton,
            ProtocolVariant::Modified,
        ] {
            let network = Network::from_scenario(&scenario, variant);
            let (class, reach) = network.classify(ExploreOptions::new().max_states(MAX_STATES));
            println!(
                "{:<8} {:<9} {:>7} {:>7}  {:<34} {}",
                scenario.name,
                variant.to_string(),
                reach.states,
                reach.stable_vectors.len(),
                class.to_string(),
                if variant == ProtocolVariant::Standard {
                    scenario.description
                } else {
                    ""
                }
            );
        }
        println!();
    }
    println!("(states = distinct configurations reachable under any activation order)");
}
