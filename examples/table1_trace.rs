//! Regenerate the paper's **Table 1**: the step-by-step update sequence
//! that produces the Fig 3 transient oscillation. The async engine's
//! trace is rendered as a timeline of sends, deliveries, and best-route
//! flips — the same information Table 1 tabulates.
//!
//! Run: `cargo run --release --example table1_trace`

use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::fig3::{self, routes};
use ibgp::sim::{AsyncEvent, AsyncSim, FixedDelay, TraceEvent};
use ibgp::ExitPathRef;

fn main() {
    let s = fig3::scenario();
    let without_r1: Vec<ExitPathRef> = s
        .exits
        .iter()
        .filter(|p| p.id() != routes::R1)
        .cloned()
        .collect();
    let r1 = s.exits[0].clone();
    let topo = s.topology;

    let mut sim = AsyncSim::new(
        &topo,
        ProtocolConfig::STANDARD,
        without_r1,
        Box::new(FixedDelay(5)),
    );
    sim.start();
    sim.schedule(2, AsyncEvent::Inject { path: r1 });
    // Two full laps of the oscillation are enough to see the cycle.
    let _ = sim.run(120);

    println!("Table 1 (reproduced): update sequence of the Fig 3 oscillation");
    println!("routers: A=r0 (r1/r2), B=r1 (r3/r4), C=r2 (r5/r6); delays fixed at 5\n");
    println!("{:<6} event", "time");
    for ev in sim.trace() {
        let line = match ev {
            TraceEvent::External { at, event } => Some((at, format!("E-BGP: {event}"))),
            TraceEvent::BestChanged { at, node, from, to } => {
                let f = from.map(|p| p.to_string()).unwrap_or_else(|| "-".into());
                let t = to.map(|p| p.to_string()).unwrap_or_else(|| "-".into());
                Some((at, format!("{node} best route {f} -> {t}")))
            }
            TraceEvent::Delivered {
                at,
                from,
                to,
                paths,
            } => {
                let set = if paths.is_empty() {
                    "withdraw".to_string()
                } else {
                    paths
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                };
                Some((at, format!("{to} receives {{{set}}} from {from}")))
            }
            TraceEvent::Sent { .. } => None, // sends mirror deliveries; keep the table tight
        };
        if let Some((at, text)) = line {
            println!("{:<6} {}", at, text);
        }
    }
    println!("\n…the hide (r2/r4/r6) and unhide (r1/r3/r5) waves chase each other");
    println!("around the triangle; with RFC 4271 MRAI jitter they eventually merge");
    println!("(see EXPERIMENTS.md E4), and under the modified protocol the system");
    println!("quiesces immediately on the MED-0 fixed point.");
}
