//! The §1 policy knobs compared on the canonical oscillator (Fig 1a):
//! per-neighbor MED (standard), `always-compare-med`, MEDs disabled, the
//! RFC 1771 rule ordering, and the two protocol fixes.
//!
//! Run: `cargo run --release --example med_policies`

use ibgp::proto::variants::ProtocolConfig;
use ibgp::scenarios::{fig1a, fig1b};
use ibgp::{ExploreOptions, MedMode, Network, ProtocolVariant, RuleOrder, SelectionPolicy};

fn policies() -> Vec<(&'static str, ProtocolConfig)> {
    let p = |variant, med_mode, rule_order| ProtocolConfig {
        variant,
        policy: SelectionPolicy {
            med_mode,
            rule_order,
        },
    };
    vec![
        (
            "standard (per-neighbor MED)",
            p(
                ProtocolVariant::Standard,
                MedMode::PerNeighborAs,
                RuleOrder::PreferEbgp,
            ),
        ),
        (
            "always-compare-med",
            p(
                ProtocolVariant::Standard,
                MedMode::AlwaysCompare,
                RuleOrder::PreferEbgp,
            ),
        ),
        (
            "MEDs ignored",
            p(
                ProtocolVariant::Standard,
                MedMode::Ignore,
                RuleOrder::PreferEbgp,
            ),
        ),
        (
            "RFC 1771 rule order",
            p(
                ProtocolVariant::Standard,
                MedMode::PerNeighborAs,
                RuleOrder::MinCostFirst,
            ),
        ),
        (
            "Walton et al. vector",
            p(
                ProtocolVariant::Walton,
                MedMode::PerNeighborAs,
                RuleOrder::PreferEbgp,
            ),
        ),
        (
            "modified (Choose_set)",
            p(
                ProtocolVariant::Modified,
                MedMode::PerNeighborAs,
                RuleOrder::PreferEbgp,
            ),
        ),
    ]
}

fn main() {
    for scenario in [fig1a::scenario(), fig1b::scenario()] {
        println!("== {} — {} ==", scenario.name, scenario.description);
        println!("{:<28} verdict (exhaustive analysis)", "policy");
        for (name, config) in policies() {
            let network = Network::from_scenario(&scenario, config.variant).with_config(config);
            let (class, reach) = network.classify(ExploreOptions::new().max_states(500_000));
            println!(
                "{:<28} {} ({} stable solutions)",
                name,
                class,
                reach.stable_vectors.len()
            );
        }
        println!();
    }
    println!("Note how workarounds behave per-instance, while the modified");
    println!("protocol is the only one that is *provably* safe on all of them.");
}
