//! Quickstart: build an AS with two route-reflection clusters, inject two
//! E-BGP routes for the same destination, and watch the paper's modified
//! protocol converge where classic I-BGP is order-dependent.
//!
//! Run: `cargo run --example quickstart`

use ibgp::{ExploreOptions, Network, ProtocolVariant};

fn main() {
    // The paper's Fig 2 "DISAGREE" shape: each reflector is IGP-closer to
    // the *other* cluster's border router.
    //
    //   RR0 ──10── c2 (exit p1)      RR0 ──1── c3
    //   RR1 ──10── c3 (exit p2)      RR1 ──1── c2
    let build = |variant| {
        Network::builder()
            .routers(4)
            .link(0, 2, 10)
            .link(0, 3, 1)
            .link(1, 3, 10)
            .link(1, 2, 1)
            .cluster([0], [2]) // reflector 0, client 2
            .cluster([1], [3]) // reflector 1, client 3
            .exit_via(1, 2, 1, 0) // exit path p1 at router 2, via AS1, MED 0
            .exit_via(2, 3, 1, 0) // exit path p2 at router 3, via AS1, MED 0
            .variant(variant)
            .build()
            .expect("valid network")
    };

    println!("== classic I-BGP with route reflection ==");
    let standard = build(ProtocolVariant::Standard);
    let (class, reach) = standard.classify(ExploreOptions::new().max_states(100_000));
    println!(
        "exhaustive analysis: {class}; {} reachable stable solutions",
        reach.stable_vectors.len()
    );
    for (i, solution) in reach.stable_vectors.iter().enumerate() {
        println!("  solution {}: {:?}", i + 1, solution);
    }
    println!("=> which one you get depends on message ordering.\n");

    println!("== the paper's modified protocol (advertise Choose_set) ==");
    let modified = build(ProtocolVariant::Modified);
    let result = modified.converge(10_000);
    println!("outcome: {}", result.outcome);
    for (router, route) in result.best_routes.iter().enumerate() {
        match route {
            Some(r) => println!("  router r{router}: {r}"),
            None => println!("  router r{router}: no route"),
        }
    }
    let report = modified.determinism(16, 10_000);
    println!(
        "determinism sweep: {} schedules, {} distinct outcome(s) -> {}",
        report.converged_runs + report.unconverged_runs,
        report.distinct_outcomes.len(),
        if report.deterministic() {
            "same routing table every time"
        } else {
            "NOT deterministic (bug!)"
        }
    );

    println!("\nGraphviz of the topology:\n{}", modified.to_dot());
}
