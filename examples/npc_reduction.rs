//! The §5 NP-completeness reduction, end to end: a 3-SAT formula becomes
//! an I-BGP configuration whose stabilization question *is* the
//! satisfiability question.
//!
//! Run: `cargo run --release --example npc_reduction`

use ibgp::npc::{
    assignment_from_best, check_equivalence, reduce, schedule_for, solve, Clause, Formula, Lit,
};
use ibgp::proto::variants::ProtocolConfig;
use ibgp::sim::{Engine, SyncEngine};

fn main() {
    // (x0 ∨ x1 ∨ ¬x2) ∧ (¬x0 ∨ x2 ∨ x1) ∧ (¬x1 ∨ ¬x2 ∨ x0)
    let formula = Formula::new(
        3,
        vec![
            Clause(vec![Lit::pos(0), Lit::pos(1), Lit::neg(2)]),
            Clause(vec![Lit::neg(0), Lit::pos(2), Lit::pos(1)]),
            Clause(vec![Lit::neg(1), Lit::neg(2), Lit::pos(0)]),
        ],
    )
    .expect("well-formed");
    println!("formula J = {formula}");

    let sr = reduce(&formula);
    println!(
        "reduced instance SR_J: {} routers ({} variable gadgets, {} clause gadgets, 1 hub), {} exit paths",
        sr.node_count(),
        formula.num_vars,
        formula.clauses.len(),
        sr.exits.len()
    );

    match solve(&formula) {
        Some(assignment) => {
            println!("DPLL: satisfiable with {assignment:?}");
            let mut schedule = schedule_for(&sr, &assignment);
            let mut engine =
                SyncEngine::new(&sr.topology, ProtocolConfig::STANDARD, sr.exits.clone());
            let outcome = engine.run(&mut schedule, 200_000);
            println!("driving SR_J with the induced activation schedule: {outcome}");
            let read_back = assignment_from_best(&sr, &engine.best_vector())
                .expect("stable state encodes an orientation");
            println!(
                "assignment read back from the stable routing state: {read_back:?} (satisfies J: {})",
                formula.eval(&read_back)
            );
        }
        None => println!("DPLL: unsatisfiable — SR_J has no stable configuration"),
    }

    // The unsatisfiable counterpart: (x0) ∧ (¬x0).
    let unsat = Formula::new(
        1,
        vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
    )
    .expect("well-formed");
    println!("\nformula J' = {unsat}");
    let report = check_equivalence(&unsat, 200_000);
    println!(
        "equivalence check: satisfiable={}, routing side agrees={} ({} orientation schedules all ended in provable cycles)",
        report.satisfiable, report.agrees, report.schedules_tried
    );
}
