//! The paper's operational selling point (§1, §10): the modified
//! protocol converges to the *same* routing configuration independent of
//! message timing — including after routers fail and restart. "Network
//! operators prefer configurations where the routing tables before and
//! after the crash are identical."
//!
//! This example runs Fig 2 through the message-level simulator: converge
//! from cold, record the table, crash reflector RR1, restart it, and
//! compare the table afterwards.
//!
//! Run: `cargo run --release --example crash_recovery`

use ibgp::scenarios::fig2;
use ibgp::sim::{AsyncEvent, SeededJitter};
use ibgp::{Network, ProtocolVariant, RouterId};

fn fmt_table(bv: &[Option<ibgp::ExitPathId>]) -> String {
    bv.iter()
        .map(|b| b.map(|p| p.to_string()).unwrap_or_else(|| "-".into()))
        .collect::<Vec<_>>()
        .join(",")
}

fn main() {
    let scenario = fig2::scenario();

    for variant in [ProtocolVariant::Standard, ProtocolVariant::Modified] {
        println!("== {variant} protocol on Fig 2 ==");
        let network = Network::from_scenario(&scenario, variant);
        let mut cold_tables = std::collections::BTreeSet::new();
        let mut identical_after_restart = 0;
        let mut runs = 0;
        for seed in 0..12u64 {
            let mut sim = network.async_sim(Box::new(SeededJitter::new(seed, 1, 9)));
            sim.set_mrai(16);
            sim.set_mrai_jitter(seed ^ 0xFEED);
            sim.start();

            // Cold convergence.
            if !sim.run(50_000).quiescent() {
                println!("  seed {seed}: no quiescence before crash");
                continue;
            }
            let before = sim.best_vector();
            cold_tables.insert(before.clone());

            // Crash RR1, restart it, re-settle.
            let t = sim.now();
            sim.schedule(
                t + 10,
                AsyncEvent::NodeDown {
                    node: RouterId::new(0),
                },
            );
            sim.schedule(
                t + 60,
                AsyncEvent::NodeUp {
                    node: RouterId::new(0),
                },
            );
            if !sim.run(200_000).quiescent() {
                println!("  seed {seed}: no quiescence after restart");
                continue;
            }
            let after = sim.best_vector();
            runs += 1;
            if before == after {
                identical_after_restart += 1;
            } else if runs <= 3 {
                println!(
                    "  seed {seed}: table CHANGED across the crash: [{}] -> [{}]",
                    fmt_table(&before),
                    fmt_table(&after)
                );
            }
        }
        println!(
            "  cold convergence: {} distinct table(s) across 12 delay seeds",
            cold_tables.len()
        );
        println!(
            "  crash+restart: {identical_after_restart}/{runs} runs ended with the pre-crash table"
        );
        println!(
            "  => {}\n",
            if cold_tables.len() == 1 && identical_after_restart == runs {
                "deterministic and crash-stable, as the paper promises for the modified protocol"
            } else {
                "timing/failure-dependent routing — the operator cannot predict the table"
            }
        );
    }
}
