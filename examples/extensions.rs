//! The three extensions in one tour: confederations, deep hierarchies,
//! and the §10 oscillation-triggered upgrade.
//!
//! Run: `cargo run --release --example extensions`

use ibgp::confed::scenarios::confed_fig1a;
use ibgp::confed::{explore_confed, ConfedMode};
use ibgp::hierarchy::scenarios::deep_fig1a;
use ibgp::hierarchy::{explore_hier, HierMode};
use ibgp::scenarios::fig1a;
use ibgp::sim::{AdaptivePolicy, FixedDelay};
use ibgp::{Network, ProtocolVariant};

fn main() {
    println!("== 1. Confederations (the field notice's other oscillating class) ==");
    let (topo, exits) = confed_fig1a();
    let single = explore_confed(&topo, ConfedMode::SingleBest, exits.clone(), 300_000);
    let set = explore_confed(&topo, ConfedMode::SetAdvertisement, exits, 300_000);
    println!(
        "  Fig 1(a) on two sub-ASes, single-best advertisement: {} reachable states, {} stable -> {}",
        single.states,
        single.stable_vectors.len(),
        if single.persistent_oscillation() {
            "PERSISTENT OSCILLATION (proven)"
        } else {
            "stable"
        }
    );
    println!(
        "  same configuration, Choose_set advertisement: {} stable solution(s) -> the paper's fix transfers\n",
        set.stable_vectors.len()
    );

    println!("== 2. Deep hierarchies (§2's 'arbitrarily deep' case) ==");
    let (topo, exits) = deep_fig1a();
    let single = explore_hier(&topo, HierMode::SingleBest, exits.clone(), 500_000);
    let set = explore_hier(&topo, HierMode::SetAdvertisement, exits, 500_000);
    println!(
        "  Fig 1(a) with the oscillating client two levels down: single-best -> {}",
        if single.persistent_oscillation() {
            "PERSISTENT OSCILLATION (proven)"
        } else {
            "stable"
        }
    );
    println!(
        "  Choose_set advertisement at depth three: {} stable solution(s) -> fixed at every depth\n",
        set.stable_vectors.len()
    );

    println!("== 3. Oscillation-triggered upgrade (§10 future work) ==");
    let s = fig1a::scenario();
    let n = Network::from_scenario(&s, ProtocolVariant::Standard);
    let mut plain = n.async_sim(Box::new(FixedDelay(3)));
    plain.start();
    let outcome = plain.run(20_000);
    println!(
        "  standard I-BGP on Fig 1(a), message-level run: {outcome} ({} best flips)",
        plain.metrics().best_changes
    );
    let mut adaptive = n.async_sim(Box::new(FixedDelay(3)));
    adaptive.set_adaptive(AdaptivePolicy::DEFAULT);
    adaptive.start();
    let outcome = adaptive.run(200_000);
    let upgraded = adaptive.upgraded_routers();
    println!(
        "  with the flap detector: {outcome}; routers upgraded to Choose_set: {:?}",
        upgraded.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    println!("  -> the AS heals itself, and only the flapping region pays the extra paths");
}
