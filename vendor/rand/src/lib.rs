//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand 0.8` API subset it
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 seeded into xoshiro256**: deterministic,
//! fast, and statistically adequate for randomized topology generation and
//! schedule sampling. It makes no attempt to be bit-compatible with the
//! real `rand` crate — seeds produce *a* reproducible stream, not the same
//! stream upstream `StdRng` would produce.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics on an empty range, matching
    /// `rand`'s contract.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 random bits -> uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = sample_below(rng, span);
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range over a 128-bit domain can't
                    // occur for the integer widths below.
                    return rng.next_u64() as $t;
                }
                let v = sample_below(rng, span);
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = sample_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = sample_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_signed_range!(i8, i16, i32, i64, isize);

/// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Lemire's multiply-shift with rejection on the low word.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = rng.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return m >> 64;
            }
        }
    }
    // Wide ranges (only reachable from 128-bit spans of 64-bit inclusive
    // ranges): rejection below the largest multiple of `bound`.
    let limit = u128::MAX - (u128::MAX % bound);
    loop {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if x < limit {
            return x % bound;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; not stream-compatible with upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let s = rng.gen_range(0usize..=0);
            assert_eq!(s, 0);
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "{heads}");
    }
}
