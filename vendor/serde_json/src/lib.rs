//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] data model as
//! JSON text. Supports the API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let v = parser.value()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Ensure floats keep a decimal point so they re-parse as F64.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq('[', ']', items.len(), out, indent, depth, |out, i, d| {
            write_value(out, &items[i], indent, d)
        }),
        Value::Map(entries) => {
            write_seq('{', '}', entries.len(), out, indent, depth, |out, i, d| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            })
        }
    }
}

fn write_seq(
    open: char,
    close: char,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        if self.peek() != Some(b'"') {
            return Err(Error(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error(format!("bad number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error(format!("bad number `{text}`")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![vec![1u32], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  ["), "{s}");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4 2").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
