//! Offline stand-in for `criterion`.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal wall-clock benchmarking harness exposing the `criterion` API
//! subset its benches use: `Criterion` (with `sample_size`,
//! `warm_up_time`, `measurement_time` builders), `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros (both forms).
//!
//! Measurement model: each benchmark runs one warm-up invocation, then
//! `sample_size` timed samples, reporting min/median/mean per iteration.
//! There is no statistical analysis, HTML report, or baseline storage —
//! output is one line per benchmark on stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)]
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub warms up with one invocation.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        run_one(&id.to_string(), sample_size, budget, f);
        self
    }

    /// No-op (upstream prints the final summary here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Accepted for compatibility; the stub warms up with one invocation.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Time the routine: one warm-up call, then up to `sample_size` timed
    /// samples within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, budget: Duration, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        budget,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    bencher.samples.sort();
    let n = bencher.samples.len();
    let min = bencher.samples[0];
    let median = bencher.samples[n / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n as u32;
    println!(
        "{label:<60} min {:>12} median {:>12} mean {:>12} ({n} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Both upstream forms:
/// `criterion_group!(name, target1, target2)` and
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point generator: runs each group and exits.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; the stub
            // accepts and ignores them, but honours `--test` by running
            // nothing (compile-check only).
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // one warm-up + 5 samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
