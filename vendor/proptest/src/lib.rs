//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal randomized property-testing harness exposing the `proptest`
//! surface its test suites use: the `proptest!` macro (with the
//! `#![proptest_config(..)]` attribute), `ProptestConfig { cases, .. }`,
//! `Strategy`/`prop_map`, `any::<T>()`, integer-range strategies, tuple
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (failures report the raw
//! generated inputs), and generation streams are deterministic per test
//! name rather than persisted to a regression file.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of a given type (no shrinking).
    pub trait Strategy {
        /// The type of values produced.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then build a dependent strategy from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying the predicate (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}`: no satisfying value in 1000 draws",
                self.whence
            );
        }
    }

    /// Type-erased strategy (cheaply clonable).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn StrategyObject<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    trait StrategyObject<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyObject<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    }

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.rng.gen_bool(0.5)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// The RNG handed to strategies.
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// Deterministic per-(test, case) generator.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9)),
            }
        }
    }

    /// A failed property (reported, not shrunk).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod config {
    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// Config with the given case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }
}

/// The property-test entry macro. Mirrors `proptest::proptest!` for the
/// `fn name(pat in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $(
                                let __generated =
                                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                                __inputs.push(format!("{:?}", __generated));
                                let $pat = __generated;
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: [{}]",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs.join(", ")
                        );
                    }
                    ::std::result::Result::Err(__panic) => {
                        eprintln!(
                            "proptest `{}` panicked at case {}/{}\n  inputs: [{}]",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs.join(", ")
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// What `use proptest::prelude::*` brings into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` module-alias tree (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=6), c in prop::collection::vec(0u8..3, 1..4)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(!c.is_empty() && c.len() < 4);
            prop_assert!(c.iter().all(|&x| x < 3));
        }

        #[test]
        fn map_transforms(v in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
                #[allow(dead_code)]
                fn always_fails(x in 0u32..4) {
                    prop_assert!(x > 100, "x={x} is not > 100");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
