//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the item's
//! token stream by hand. It supports exactly the shapes this workspace
//! derives on — non-generic named structs, tuple structs, and enums with
//! unit / tuple / struct variants — plus the `#[serde(transparent)]`
//! attribute. The generated impls target the value-model traits in the
//! vendored `serde` crate (`to_value`/`from_value`), producing serde's
//! default externally-tagged representation so JSON round-trips match
//! upstream behaviour for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed form of the deriving item.
struct Item {
    name: String,
    transparent: bool,
    kind: ItemKind,
}

enum ItemKind {
    /// Named-field struct with field names.
    Struct(Vec<String>),
    /// Tuple struct with a field count.
    Tuple(usize),
    /// Enum of (variant name, fields).
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Split a token list on top-level commas.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes from a token list, reporting whether any was
/// `#[serde(transparent)]`.
fn strip_attrs(tokens: &[TokenTree]) -> (usize, bool) {
    let mut i = 0;
    let mut transparent = false;
    while i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            if args.stream().to_string().contains("transparent") {
                                transparent = true;
                            }
                        }
                    }
                }
                i += 2;
                continue;
            }
        }
        break;
    }
    (i, transparent)
}

/// Strip a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn strip_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    if let Some(TokenTree::Ident(id)) = tokens.first() {
        if id.to_string() == "pub" {
            i = 1;
            if let Some(TokenTree::Group(g)) = tokens.get(1) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i = 2;
                }
            }
        }
    }
    i
}

/// Field names of a named-field body (struct or enum variant).
fn named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_commas(&group_tokens)
        .into_iter()
        .filter_map(|field| {
            let (skip, _) = strip_attrs(&field);
            let rest = &field[skip..];
            let rest = &rest[strip_vis(rest)..];
            match rest.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Field count of a tuple body.
fn tuple_arity(group_tokens: Vec<TokenTree>) -> usize {
    split_commas(&group_tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, transparent) = strip_attrs(&tokens);
    i += strip_vis(&tokens[i..]);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    i += 1;

    // Generic items are out of scope for the stub.
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Tuple(tuple_arity(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Vec::new()),
            other => panic!("serde_derive stub: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_commas(&body)
                    .into_iter()
                    .filter(|chunk| !chunk.is_empty())
                    .map(|chunk| {
                        let (skip, _) = strip_attrs(&chunk);
                        let rest = &chunk[skip..];
                        let vname = match rest.first() {
                            Some(TokenTree::Ident(id)) => id.to_string(),
                            other => panic!(
                                "serde_derive stub: malformed variant in `{name}`: {other:?}"
                            ),
                        };
                        let vkind = match rest.get(1) {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                VariantKind::Struct(named_fields(g.stream().into_iter().collect()))
                            }
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                VariantKind::Tuple(tuple_arity(g.stream().into_iter().collect()))
                            }
                            _ => VariantKind::Unit,
                        };
                        (vname, vkind)
                    })
                    .collect();
                ItemKind::Enum(variants)
            }
            other => panic!("serde_derive stub: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };

    Item {
        name,
        transparent,
        kind,
    }
}

/// Derive `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        ItemKind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                fields[0]
            )
        }
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Map(_) => Ok({name} {{ {} }}),\n\
                     __other => Err(::serde::DeError::unexpected(\"struct {name}\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        ItemKind::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}({})),\n\
                     __other => Err(::serde::DeError::unexpected(\"tuple struct {name}\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, k)| matches!(k, VariantKind::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "if let Some(__inner) = __v.get(\"{v}\") {{\n\
                             return Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?));\n\
                         }}"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "if let Some(__inner) = __v.get(\"{v}\") {{\n\
                                 if let ::serde::Value::Seq(__items) = __inner {{\n\
                                     if __items.len() == {n} {{\n\
                                         return Ok({name}::{v}({}));\n\
                                     }}\n\
                                 }}\n\
                                 return Err(::serde::DeError::unexpected(\"{n}-tuple variant {v}\", __inner));\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "if let Some(__inner) = __v.get(\"{v}\") {{\n\
                                 return Ok({name}::{v} {{ {} }});\n\
                             }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
                 {}\n\
                 Err(::serde::DeError::unexpected(\"enum {name}\", __v))",
                unit_arms.join(" "),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl must parse")
}
