//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the workspace vendors a
//! small serialization framework exposing the `serde` surface this repo
//! uses: the `Serialize`/`Deserialize` traits, the derive macros (via the
//! sibling `serde_derive` stub), and the `rc` feature's `Arc` support.
//!
//! Instead of serde's visitor architecture, everything round-trips through
//! an owned [`Value`] tree (the JSON data model). `serde_json` in
//! `vendor/serde_json` renders and parses that tree. The derive macros
//! generate externally-tagged enum representations and transparent
//! newtypes, matching serde's defaults for the shapes in this workspace,
//! so `serde_json::to_string`/`from_str` round-trips behave identically.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

// Re-export the derive macros under the canonical names so
// `use serde::{Serialize, Deserialize}` imports both trait and macro.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all serialization flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing an unexpected value shape.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {found:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the data model.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned-deserialization alias used by real serde signatures.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::unexpected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError(format!("expected {N} elements, found {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// The `rc` feature's Arc support: serialize through, rebuild a fresh Arc.
impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort rendered keys so output is deterministic.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        finish_map(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        map_from_value(v)
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    iter: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let entries: Vec<(Value, Value)> = iter.map(|(k, v)| (k.to_value(), v.to_value())).collect();
    finish_map(entries)
}

/// Maps with string keys become objects; anything else becomes a sequence
/// of `[key, value]` pairs (serde_json errors on non-string keys; we keep
/// it total since both ends of the round-trip are ours).
fn finish_map(entries: Vec<(Value, Value)>) -> Value {
    if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Seq(
            entries
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_value<M, K, V>(v: &Value) -> Result<M, DeError>
where
    M: FromIterator<(K, V)>,
    K: Deserialize,
    V: Deserialize,
{
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(DeError::unexpected("[key, value] pair", other)),
            })
            .collect(),
        other => Err(DeError::unexpected("map", other)),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == impl_tuple!(@count $($name)+) => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
    (@count $($name:ident)+) => { [$(impl_tuple!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&None::<u32>.to_value()), Ok(None));
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn arc_and_maps_round_trip() {
        let a = Arc::new(5u64);
        assert_eq!(Arc::<u64>::from_value(&a.to_value()), Ok(Arc::new(5)));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u32);
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
        let mut nm = BTreeMap::new();
        nm.insert(3u32, "v".to_string());
        assert_eq!(BTreeMap::from_value(&nm.to_value()), Ok(nm));
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
