//! Umbrella package: integration tests and examples live here.
pub use ibgp;
